// Package serve is the long-running experiment service behind `lotus-sim
// serve`: the simulation kernel from internal/sim and the declarative
// scenario engine from internal/scenario, fronted by a JSON HTTP API whose
// hot path is a cache hit.
//
// A request names a registry scenario or carries a full JSON spec, plus
// -set-style overrides, a seed, and replicate/point overrides. The server
// folds the overrides into the spec, canonicalizes it
// (scenario.CanonicalJSON), and derives a deterministic cache key from the
// canonical bytes, the seed, and the code version. Repeat queries — however
// their JSON is ordered or their defaults spelled — answer from a bounded
// content-addressed result cache (LRU by bytes); concurrent identical
// requests singleflight onto one queued job; misses enqueue on a bounded
// job queue executed one run at a time on the shared worker pool (each run
// itself parallelizes across replicates), with progress visible while it
// folds.
//
// Routes:
//
//	POST /experiments        submit a run; 200 on cache hit, 202 when queued
//	GET  /jobs/{key}         job status: queued -> running (replicate counts) -> done|failed
//	GET  /results/{key}      cached artifact as ?format=json|csv|text (ETag = artifact address)
//	GET  /scenarios          the scenario catalogue
//	GET  /healthz            liveness + cache/queue/run statistics
//	GET  /metrics            Prometheus text exposition (internal/obs)
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lotuseater/internal/metrics"
	"lotuseater/internal/scenario"
)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// CacheBytes bounds the result cache by total artifact bytes
	// (default 64 MiB). The newest result always survives eviction.
	CacheBytes int64
	// QueueDepth bounds how many jobs may wait behind the executor
	// (default 64); an admitted-but-full queue answers 503.
	QueueDepth int
	// Workers bounds each run's in-flight replicates on the shared pool
	// (0 = pool width). Results never depend on it.
	Workers int
	// Version is folded into every cache key so results computed by a
	// different build are never served as current. Empty means the build's
	// VCS revision (module version, then "dev", as fallbacks).
	Version string
	// Run executes one resolved experiment (nil = scenario.Run in this
	// process). A cluster coordinator injects its distributed runner here;
	// everything else about the service — cache, singleflight, queue,
	// progress — is role-independent.
	Run RunFunc
	// Store, when non-nil, federates the result cache beyond this process:
	// lookups that miss locally consult it (and fill the local cache on a
	// hit), and finished artifacts are published to it. A cluster worker
	// points this at its coordinator, making every node's `/results/{key}`
	// answer from the fleet-wide store.
	Store ArtifactStore
	// StoreDir, when non-empty, persists finished artifacts to disk under
	// this directory so results survive a restart. Lookups that miss the
	// in-memory cache read through the disk store (re-hashing every body —
	// disk is never trusted) before consulting Store.
	StoreDir string
	// StoreMaxBytes bounds the disk store's unique blob bytes (<= 0 means
	// 1 GiB). A GC loop evicts oldest-stored entries past the budget; the
	// newest entry always survives.
	StoreMaxBytes int64
	// StoreMaxAge, when positive, expires disk entries stored longer ago
	// than this. Zero means no age bound.
	StoreMaxAge time.Duration
	// StoreGCInterval is the disk GC cadence (<= 0 means one minute). The
	// size bound is additionally enforced inline on every write, so the
	// loop only has to catch age expiry and stragglers.
	StoreGCInterval time.Duration
	// LogFormat selects structured request logging: "json" emits one JSON
	// line per request to LogWriter; "" or "off" disables logging.
	LogFormat string
	// LogWriter receives access log lines (nil = os.Stderr).
	LogWriter io.Writer
}

// RunFunc executes one resolved experiment and returns its artifact. The
// options carry the service's worker bound and the job's progress
// callbacks, exactly as the local runner receives them.
type RunFunc func(spec *scenario.Spec, seed uint64, opts scenario.RunOptions) (*metrics.Artifact, error)

// ArtifactStore is a remote content-addressed artifact store — the shared
// half of the cluster cache. Keys are the same deterministic cache keys the
// local LRU uses; bodies are canonical artifact JSON whose sha256 is the
// address, so a store answer is verifiable by either side.
type ArtifactStore interface {
	// Lookup returns the artifact stored under key, if any. It may do
	// network I/O; never call it while holding server locks.
	Lookup(key string) (body []byte, address string, ok bool)
	// Publish offers a finished artifact to the store. Best effort: the
	// local cache already holds the result, so a lost publish costs a
	// recompute, not correctness.
	Publish(key string, body []byte, address string)
}

// finishedCap bounds how many finished (done/failed) job records are kept
// for the status endpoint; beyond it the oldest are dropped. Completed keys
// still answer "done" for as long as their result stays cached.
const finishedCap = 1024

// Server is the experiment service. It implements http.Handler; wrap it in
// an http.Server (or httptest.Server) to listen. Close is idempotent.
type Server struct {
	cfg     Config
	version string
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in Observe; what ServeHTTP dispatches
	cache   *resultCache
	run     RunFunc
	store   ArtifactStore
	disk    *diskStore // nil without StoreDir
	met     *Metrics
	alog    *accessLog // nil unless LogFormat selects one

	mu       sync.Mutex
	jobs     map[string]*job // singleflight: live and recently finished jobs
	finished []*job          // finished-job retention ring, oldest first
	closed   bool
	closeErr error // what queued jobs fail with once closed

	queue     chan *job
	execDone  chan struct{}
	closeOnce sync.Once

	runs atomic.Uint64 // simulations actually executed (the singleflight proof)
}

// New builds a Server and starts its executor (and, with StoreDir set, the
// disk store's GC loop). The only error source is opening the disk store —
// an unusable store directory should fail startup loudly, not silently
// degrade to memory-only persistence.
func New(cfg Config) (*Server, error) {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	version := cfg.Version
	if version == "" {
		version = codeVersion()
	}
	s := &Server{
		cfg:      cfg,
		version:  version,
		mux:      http.NewServeMux(),
		cache:    newResultCache(cfg.CacheBytes),
		run:      cfg.Run,
		store:    cfg.Store,
		jobs:     make(map[string]*job),
		queue:    make(chan *job, cfg.QueueDepth),
		execDone: make(chan struct{}),
	}
	if s.run == nil {
		s.run = func(spec *scenario.Spec, seed uint64, opts scenario.RunOptions) (*metrics.Artifact, error) {
			return scenario.Run(spec, seed, opts)
		}
	}
	if cfg.StoreDir != "" {
		disk, err := openDiskStore(cfg.StoreDir, cfg.StoreMaxBytes, cfg.StoreMaxAge)
		if err != nil {
			return nil, err
		}
		disk.startGC(cfg.StoreGCInterval)
		s.disk = disk
	}
	s.met = newMetrics(s)
	s.alog = newAccessLog(cfg.LogFormat, cfg.LogWriter)
	s.mux.HandleFunc("POST /experiments", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{key}", s.handleJob)
	s.mux.HandleFunc("GET /results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.met.Registry().Handler())
	s.handler = s.Observe(s.mux)
	go s.execute()
	return s, nil
}

// ServeHTTP dispatches to the service's routes through the request
// instrumentation (metrics, access log).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close stops the executor and fails any still-queued jobs with "server
// closed". A run already in flight completes first (simulations are not
// cancellable mid-replicate). Close is idempotent and safe to call
// concurrently; it does not stop an enclosing http.Server — shut that down
// first so no new jobs arrive.
func (s *Server) Close() error {
	return s.shutdown(errors.New("serve: server closed"))
}

// Drain is the graceful SIGTERM path: stop admitting, let the run in
// flight finish, and fail every still-queued job with a status that names
// the drain (clients see "failed: server draining" rather than a generic
// close, so they know to resubmit elsewhere). Like Close it is idempotent
// — whichever of the two runs first decides the message — and it does not
// stop an enclosing http.Server; shut that down first.
func (s *Server) Drain() error {
	return s.shutdown(errors.New("serve: server draining; job not started, resubmit"))
}

func (s *Server) shutdown(reason error) error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.closeErr = reason
		s.mu.Unlock()
		close(s.queue)
		<-s.execDone
		if s.disk != nil {
			s.disk.Close()
		}
	})
	return nil
}

// Version returns the code version folded into cache keys.
func (s *Server) Version() string { return s.version }

// Runs returns how many simulations the server has actually executed —
// cache hits and singleflighted joins don't count.
func (s *Server) Runs() uint64 { return s.runs.Load() }

// execute drains the job queue one run at a time. The run itself fans out
// across replicates on the shared pool, so a single executor already uses
// the whole machine; queueing runs rather than racing them keeps memory
// bounded and progress legible.
func (s *Server) execute() {
	defer close(s.execDone)
	for j := range s.queue {
		s.mu.Lock()
		closed, reason := s.closed, s.closeErr
		s.mu.Unlock()
		if closed {
			j.fail(reason)
			s.retire(j)
			continue
		}
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.setRunning()
	s.runs.Add(1)
	start := time.Now()
	a, err := s.run(j.spec, j.seed, scenario.RunOptions{
		Workers:       s.cfg.Workers,
		Progress:      j.progress,
		PointProgress: j.pointProgress,
	})
	elapsed := time.Since(start)
	if err != nil {
		s.met.jobsFailed.Inc()
		j.fail(err)
		s.retire(j)
		return
	}
	body, encErr := a.CanonicalJSON()
	if encErr != nil {
		s.met.jobsFailed.Inc()
		j.fail(fmt.Errorf("serve: encoding artifact: %w", encErr))
		s.retire(j)
		return
	}
	s.met.jobsDone.Inc()
	s.met.jobDuration.Observe(elapsed.Seconds())
	if reps := j.totalReplicates(); reps > 0 {
		s.met.jobReplicates.Add(uint64(reps))
		if secs := elapsed.Seconds(); secs > 0 {
			s.met.jobRepsPerSec.Observe(float64(reps) / secs)
		}
	}
	address := metrics.AddressBytes(body)
	s.cache.Put(j.key, body, address)
	if s.disk != nil {
		s.disk.Put(j.key, body, address)
	}
	if s.store != nil {
		s.store.Publish(j.key, body, address)
	}
	j.finish()
	s.retire(j)
}

// retire moves a finished job into the bounded retention ring, dropping the
// oldest finished record once the ring is full (unless a newer live job has
// already taken its key).
func (s *Server) retire(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, j)
	for len(s.finished) > finishedCap {
		old := s.finished[0]
		s.finished = s.finished[1:]
		if s.jobs[old.key] == old {
			delete(s.jobs, old.key)
		}
	}
}

// Request is the body of POST /experiments. Exactly one of Scenario and
// Spec selects the run; Set applies `-set key=value` overrides on top, and
// Replicates/Points override the spec's counts (the "quality" of the run)
// before the cache key is derived, so they are part of the run's identity.
type Request struct {
	// Scenario names a registry entry.
	Scenario string `json:"scenario,omitempty"`
	// Spec is a full JSON scenario.Spec, as `lotus-sim scenarios show`
	// prints.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Set holds key=value overrides, identical to the CLI's -set flag.
	Set []string `json:"set,omitempty"`
	// Seed is the run's random seed (0 is a valid seed and the default).
	Seed uint64 `json:"seed,omitempty"`
	// Replicates overrides replicates per sweep point when positive.
	Replicates int `json:"replicates,omitempty"`
	// Points overrides the sweep's point count when positive (ignored
	// without a sweep axis, exactly like the CLI flag).
	Points int `json:"points,omitempty"`
}

// submitResponse is the body of POST /experiments responses.
type submitResponse struct {
	Key       string `json:"key"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	Address   string `json:"address,omitempty"` // artifact content address on cache hit
	StatusURL string `json:"statusUrl"`
	ResultURL string `json:"resultUrl"`
}

// resolveSpec turns a request into a validated, override-applied spec.
func resolveSpec(req *Request) (*scenario.Spec, error) {
	var spec *scenario.Spec
	switch {
	case req.Scenario != "" && len(req.Spec) > 0:
		return nil, errors.New("serve: give scenario or spec, not both")
	case req.Scenario != "":
		got, ok := scenario.Get(req.Scenario)
		if !ok {
			return nil, fmt.Errorf("serve: unknown scenario %q (GET /scenarios lists the catalogue)", req.Scenario)
		}
		spec = got
	case len(req.Spec) > 0:
		got, err := scenario.Decode(req.Spec)
		if err != nil {
			return nil, err
		}
		spec = got
	default:
		return nil, errors.New("serve: request needs a scenario name or a spec")
	}
	if err := spec.ApplySets(req.Set); err != nil {
		return nil, err
	}
	if req.Replicates < 0 || req.Points < 0 {
		return nil, errors.New("serve: replicates and points overrides must be non-negative")
	}
	if req.Replicates > 0 {
		spec.OverrideReplicates(req.Replicates)
	}
	if req.Points > 0 && spec.Sweep.Axis != "" {
		spec.Sweep.Points = req.Points
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// cacheKey derives the request's deterministic identity: code version, seed,
// and the spec's canonical bytes. Replicate/point overrides are already
// folded into the spec, so the canonical form carries the run's full
// quality.
func (s *Server) cacheKey(spec *scenario.Spec, seed uint64) (string, error) {
	canon, err := spec.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", s.version, seed)
	h.Write(canon)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// Cache-outcome labels for the access log: where a lookup was answered.
const (
	cacheHit    = "hit"    // in-memory cache
	cacheDisk   = "disk"   // disk store (read-through, refills memory)
	cacheRemote = "remote" // federated store (read-through, refills memory)
	cacheMiss   = "miss"   // nowhere; the caller recomputes
)

// lookup resolves a cache key through the read-through chain: the local LRU,
// then the disk store, then the federated store — each hit refills the
// layers above it so repeat queries stay local. The outcome names the layer
// that answered (for the access log). The store may do network I/O; callers
// must not hold s.mu.
func (s *Server) lookup(key string) (body []byte, address string, outcome string, ok bool) {
	if body, address, ok = s.cache.Get(key); ok {
		return body, address, cacheHit, true
	}
	if s.disk != nil {
		if body, address, ok = s.disk.Get(key); ok {
			s.cache.Put(key, body, address)
			return body, address, cacheDisk, true
		}
	}
	if s.store != nil {
		if body, address, ok = s.store.Lookup(key); ok {
			s.cache.Put(key, body, address)
			if s.disk != nil {
				s.disk.Put(key, body, address)
			}
			return body, address, cacheRemote, true
		}
	}
	return nil, "", cacheMiss, false
}

// CachedResult returns the artifact under key from this node's own layers —
// memory, then disk — with no remote consultation, so a store server can
// answer peers from it without recursing into the federation layer.
func (s *Server) CachedResult(key string) (body []byte, address string, ok bool) {
	if body, address, ok = s.cache.Get(key); ok {
		return body, address, true
	}
	if s.disk != nil {
		if body, address, ok = s.disk.Get(key); ok {
			s.cache.Put(key, body, address)
			return body, address, true
		}
	}
	return nil, "", false
}

// StoreResult inserts an artifact published by another node into this
// node's cache (and disk store) under its cache key. The address is
// recomputed from the bytes — content addressing makes a corrupt or
// mislabeled publish self-evident downstream, never silently served under a
// wrong ETag.
func (s *Server) StoreResult(key string, body []byte) {
	address := metrics.AddressBytes(body)
	s.cache.Put(key, body, address)
	if s.disk != nil {
		s.disk.Put(key, body, address)
	}
}

// maxRequestBytes bounds a submit body; specs are small, hostile bodies are
// not.
const maxRequestBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	spec, err := resolveSpec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := s.cacheKey(spec, req.Seed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := submitResponse{
		Key:       key,
		StatusURL: "/jobs/" + key,
		ResultURL: "/results/" + key,
	}
	noteKey(r, key)

	// The federated lookup may do network I/O, so it runs before the lock;
	// the singleflight checks below re-consult the local cache (cheap) for
	// anything that landed in between.
	if _, address, outcome, ok := s.lookup(key); ok {
		noteCache(r, outcome)
		resp.Status = StateDone
		resp.Cached = true
		resp.Address = address
		writeJSON(w, http.StatusOK, resp)
		return
	}
	noteCache(r, cacheMiss)

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[key]; ok {
		st := j.status()
		if st.Status == StateQueued || st.Status == StateRunning {
			// Singleflight: join the in-flight job.
			resp.Status = st.Status
			writeJSON(w, http.StatusAccepted, resp)
			return
		}
		// The job finished between our cache check and here (runJob caches
		// and finishes without taking s.mu): its result is a hit now, not a
		// reason to run again.
		if _, address, ok := s.cache.Get(key); ok {
			resp.Status = StateDone
			resp.Cached = true
			resp.Address = address
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// A finished record whose result fell out of the cache (or failed):
		// fall through and run again.
	}
	if s.closed {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: server closed"))
		return
	}
	j := newJob(key, spec, req.Seed, scenario.TotalReplicates(spec, scenario.RunOptions{}))
	select {
	case s.queue <- j:
		s.jobs[key] = j
		resp.Status = StateQueued
		writeJSON(w, http.StatusAccepted, resp)
	default:
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: job queue full (%d queued); retry later", cap(s.queue)))
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	// The job record may have been retired while the result lives on.
	if _, _, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, jobStatus{Key: key, Status: StateDone})
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", key))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	noteKey(r, key)
	body, address, outcome, ok := s.lookup(key)
	noteCache(r, outcome)
	if !ok {
		s.mu.Lock()
		j, live := s.jobs[key]
		s.mu.Unlock()
		if live {
			st := j.status()
			switch st.Status {
			case StateQueued, StateRunning:
				writeJSON(w, http.StatusAccepted, st)
			case StateFailed:
				writeJSON(w, http.StatusInternalServerError, st)
			default: // done but evicted
				writeError(w, http.StatusNotFound, fmt.Errorf("serve: result %q evicted; re-submit the request", key))
			}
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown result %q", key))
		return
	}

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	etag := `"` + address + `"`
	w.Header().Set("ETag", etag)
	// Conditional request: a client revalidating the artifact it already
	// holds gets 304 and no body. Content addressing makes this exact — the
	// ETag is the body's hash, so a match guarantees byte identity.
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "csv", "text":
		a, err := metrics.DecodeArtifact(body)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: decoding cached artifact: %w", err))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, a.CSV())
		} else {
			fmt.Fprint(w, a.Text())
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown format %q (want json|csv|text)", format))
	}
}

// scenarioInfo is one row of GET /scenarios.
type scenarioInfo struct {
	Name        string `json:"name"`
	Substrate   string `json:"substrate"`
	Description string `json:"description,omitempty"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	all := scenario.All()
	out := make([]scenarioInfo, 0, len(all))
	for _, spec := range all {
		out = append(out, scenarioInfo{Name: spec.Name, Substrate: spec.Substrate, Description: spec.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// health is the body of GET /healthz.
type health struct {
	Status  string     `json:"status"`
	Version string     `json:"version"`
	Runs    uint64     `json:"runs"`
	Queued  int        `json:"queued"`
	Depth   int        `json:"queueDepth"`
	Cache   cacheStats `json:"cache"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, health{
		Status:  "ok",
		Version: s.version,
		Runs:    s.runs.Load(),
		Queued:  len(s.queue),
		Depth:   cap(s.queue),
		Cache:   s.cache.Stats(),
	})
}

// etagMatch implements If-None-Match (RFC 9110 §13.1.2): a comma-separated
// list of entity tags, each possibly weak (`W/"..."`), or the wildcard `*`.
// Comparison is weak — a weak client tag still matches our strong one,
// which is right for revalidation (304), the only place this is used.
func etagMatch(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// codeVersion identifies the running build for cache keys: the VCS revision
// when the binary carries one, the module version otherwise, "dev" as the
// last resort (a dev process still caches consistently within itself).
func codeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				return kv.Value
			}
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "dev"
}
