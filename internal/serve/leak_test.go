package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"lotuseater/internal/scenario"
)

// settleGoroutines waits for the goroutine count to come back down to base,
// failing with a stack dump if it never does. The shared sim pool's workers
// live for the process and are part of base; anything above it after a
// server's lifecycle is a leak.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutines never settled to %d (now %d):\n%s", base, runtime.NumGoroutine(), buf)
}

// warmPool forces the process-wide sim pool (and anything else lazily
// started by a first run) up before a leak baseline is taken.
func warmPool(t *testing.T) {
	t.Helper()
	spec, err := scenario.Decode([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Run(spec, 1, scenario.RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestServerLifecycleNoGoroutineLeak: start a server, serve real traffic
// over HTTP, shut down, and end with exactly the goroutines we started
// with.
func TestServerLifecycleNoGoroutineLeak(t *testing.T) {
	warmPool(t)
	base := runtime.NumGoroutine()

	s := mustNew(t, Config{})
	ts := httptest.NewServer(s)
	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 41}`, tinySpec))
	waitDone(t, ts.URL, resp.Key)
	if code, _, _ := getBody(t, ts.URL+"/results/"+resp.Key); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// TestServerCloseIdempotent: Close twice (and concurrently with itself) is
// safe, queued-but-unstarted jobs fail with "server closed", and a closed
// server refuses new submissions.
func TestServerCloseIdempotent(t *testing.T) {
	s := mustNew(t, Config{QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One job through the full lifecycle so the executor has done real work.
	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 42}`, tinySpec))
	waitDone(t, ts.URL, resp.Key)

	done := make(chan error, 2)
	go func() { done <- s.Close() }()
	go func() { done <- s.Close() }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("Close %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	code, data := postJSON(t, ts.URL+"/experiments", fmt.Sprintf(`{"spec": %s, "seed": 43}`, tinySpec))
	if code != http.StatusServiceUnavailable || !strings.Contains(string(data), "closed") {
		t.Fatalf("submit after close: status %d: %s", code, data)
	}
}

// TestServerCloseFailsQueuedJobs: jobs still waiting behind the executor at
// Close fail fast with "server closed" instead of hanging forever.
func TestServerCloseFailsQueuedJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4})

	// A busy run holds the executor; two more distinct jobs wait behind it.
	busy := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 51, "replicates": 30000}`, tinySpec))
	b := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 52}`, tinySpec))
	c := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 53}`, tinySpec))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The in-flight job may have finished or been failed depending on when
	// the executor picked it up; the ones behind it must be failed or, if
	// the executor got to them before Close flagged, done.
	for _, key := range []string{b.Key, c.Key} {
		code, _, data := getBody(t, ts.URL+"/jobs/"+key)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, data)
		}
		if !strings.Contains(string(data), StateFailed) && !strings.Contains(string(data), StateDone) {
			t.Fatalf("queued job %s left in limbo after Close: %s", key, data)
		}
	}
	_ = busy
}

// TestServerDrainFailsQueuedWithDrainStatus: Drain is Close with a
// legible story — queued-but-unstarted jobs fail with a status that names
// the drain and tells the client to resubmit, and new submissions are
// refused.
func TestServerDrainFailsQueuedWithDrainStatus(t *testing.T) {
	s := mustNew(t, Config{QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A busy run holds the executor; another job waits behind it.
	busy := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 61, "replicates": 30000}`, tinySpec))
	queued := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 62}`, tinySpec))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	code, _, data := getBody(t, ts.URL+"/jobs/"+queued.Key)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	// The executor may have reached the queued job before Drain flagged;
	// otherwise it must fail with the drain message, not a generic close.
	if !strings.Contains(string(data), StateDone) && !strings.Contains(string(data), "draining") {
		t.Fatalf("queued job after Drain: %s", data)
	}

	code, data = postJSON(t, ts.URL+"/experiments", fmt.Sprintf(`{"spec": %s, "seed": 63}`, tinySpec))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: status %d: %s", code, data)
	}
	_ = busy
}
