package serve

import (
	"context"
	"net/http"
	"strings"
	"time"

	"lotuseater/internal/obs"
)

// routes is the fixed label set for per-route request series, in
// registration (and therefore exposition) order. Every role shares the one
// schema — cluster routes sit at zero on a single-process server — so a
// scraper sees a stable shape across the fleet. routeOf maps anything
// unrecognized to "other".
var routes = []string{
	"/experiments",
	"/jobs/{key}",
	"/results/{key}",
	"/scenarios",
	"/healthz",
	"/metrics",
	"/cluster/join",
	"/cluster/run",
	"/cluster/artifacts/{key}",
	"/cluster/status",
	"other",
}

// routeOf classifies a request into the fixed route label set. It is a
// static table rather than mux introspection so the label cardinality is
// bounded by construction — a hostile path can never mint a new series.
func routeOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/experiments":
		return "/experiments"
	case strings.HasPrefix(p, "/jobs/"):
		return "/jobs/{key}"
	case strings.HasPrefix(p, "/results/"):
		return "/results/{key}"
	case p == "/scenarios":
		return "/scenarios"
	case p == "/healthz":
		return "/healthz"
	case p == "/metrics":
		return "/metrics"
	case p == "/cluster/join":
		return "/cluster/join"
	case p == "/cluster/run":
		return "/cluster/run"
	case strings.HasPrefix(p, "/cluster/artifacts/"):
		return "/cluster/artifacts/{key}"
	case p == "/cluster/status":
		return "/cluster/status"
	}
	return "other"
}

// Bucket layouts. Request latencies are dominated by cache hits
// (sub-millisecond) with a long tail of queued-run polls; job durations run
// milliseconds to minutes; replicate throughput spans decades.
var (
	reqDurBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}
	jobDurBuckets = []float64{0.005, 0.05, 0.25, 1, 5, 30, 120, 600}
	repsBuckets   = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7}
)

// Metrics is the server's instrument set, registered in a fixed order so
// `GET /metrics` is byte-stable for a given traffic history (the golden
// scrape test pins the layout). The cluster layer bumps its counters
// through the exported methods — the series exist on every role, zero
// where a role never touches them.
type Metrics struct {
	reg *obs.Registry

	jobsDone, jobsFailed *obs.Counter
	jobDuration          *obs.Histogram
	jobReplicates        *obs.Counter
	jobRepsPerSec        *obs.Histogram

	reqTotal map[string]*obs.Counter
	reqDur   map[string]*obs.Histogram

	workers          *obs.Gauge
	unitsDispatched  *obs.Counter
	unitRetries      *obs.Counter
	unitSteals       *obs.Counter
	unitsExecuted    *obs.Counter
	announceFailures *obs.Counter
}

// newMetrics registers the full serve metric catalogue against s. Func-
// backed series read live server state (cache stats, queue depth, disk
// store) at scrape time.
func newMetrics(s *Server) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:      reg,
		reqTotal: make(map[string]*obs.Counter, len(routes)),
		reqDur:   make(map[string]*obs.Histogram, len(routes)),
	}

	reg.GaugeFunc("lotus_build_info", "build identity; the version label is folded into every cache key",
		func() float64 { return 1 }, obs.Label{Name: "version", Value: s.version})

	cache := func(f func(cacheStats) float64) func() float64 {
		return func() float64 { return f(s.cache.Stats()) }
	}
	reg.CounterFunc("lotus_cache_hits_total", "result cache lookups answered locally",
		func() uint64 { return s.cache.Stats().Hits })
	reg.CounterFunc("lotus_cache_misses_total", "result cache lookups that missed",
		func() uint64 { return s.cache.Stats().Misses })
	reg.CounterFunc("lotus_cache_evictions_total", "result cache entries evicted to hold the byte budget",
		func() uint64 { return s.cache.Stats().Evictions })
	reg.GaugeFunc("lotus_cache_entries", "results held in the in-memory cache",
		cache(func(st cacheStats) float64 { return float64(st.Entries) }))
	reg.GaugeFunc("lotus_cache_bytes", "bytes held in the in-memory cache",
		cache(func(st cacheStats) float64 { return float64(st.Bytes) }))
	reg.GaugeFunc("lotus_cache_max_bytes", "in-memory cache byte budget",
		cache(func(st cacheStats) float64 { return float64(st.MaxBytes) }))

	reg.GaugeFunc("lotus_queue_depth", "jobs waiting behind the executor",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("lotus_queue_capacity", "job queue bound; submissions beyond it answer 503",
		func() float64 { return float64(cap(s.queue)) })

	m.jobsDone = reg.Counter("lotus_jobs_total", "jobs finished, by outcome", obs.Label{Name: "status", Value: "done"})
	m.jobsFailed = reg.Counter("lotus_jobs_total", "jobs finished, by outcome", obs.Label{Name: "status", Value: "failed"})
	m.jobDuration = reg.Histogram("lotus_job_duration_seconds", "wall-clock time of executed simulation jobs", jobDurBuckets)
	m.jobReplicates = reg.Counter("lotus_job_replicates_total", "replicates folded by executed jobs")
	m.jobRepsPerSec = reg.Histogram("lotus_job_replicates_per_second", "replicate throughput of executed jobs", repsBuckets)

	for _, route := range routes {
		m.reqTotal[route] = reg.Counter("lotus_http_requests_total", "HTTP requests served, by route",
			obs.Label{Name: "route", Value: route})
	}
	for _, route := range routes {
		m.reqDur[route] = reg.Histogram("lotus_http_request_duration_seconds", "HTTP request latency, by route",
			reqDurBuckets, obs.Label{Name: "route", Value: route})
	}

	m.workers = reg.Gauge("lotus_cluster_workers", "workers currently registered (coordinator role)")
	m.unitsDispatched = reg.Counter("lotus_cluster_units_dispatched_total", "units handed to workers (coordinator role)")
	m.unitRetries = reg.Counter("lotus_cluster_unit_retries_total", "units requeued after a worker transport failure (coordinator role)")
	m.unitSteals = reg.Counter("lotus_cluster_unit_steals_total", "adaptive waves stolen by idle workers (coordinator role)")
	m.unitsExecuted = reg.Counter("lotus_cluster_units_executed_total", "units executed for a coordinator (worker role)")
	m.announceFailures = reg.Counter("lotus_cluster_announce_failures_total", "announce/heartbeat attempts that failed (worker role)")

	disk := func(f func(diskStats) float64) func() float64 {
		return func() float64 {
			if s.disk == nil {
				return 0
			}
			return f(s.disk.Stats())
		}
	}
	diskCount := func(f func(diskStats) uint64) func() uint64 {
		return func() uint64 {
			if s.disk == nil {
				return 0
			}
			return f(s.disk.Stats())
		}
	}
	reg.GaugeFunc("lotus_store_entries", "artifacts held in the disk store (0 without -store-dir)",
		disk(func(st diskStats) float64 { return float64(st.Entries) }))
	reg.GaugeFunc("lotus_store_bytes", "unique blob bytes in the disk store",
		disk(func(st diskStats) float64 { return float64(st.Bytes) }))
	reg.GaugeFunc("lotus_store_max_bytes", "disk store byte budget",
		disk(func(st diskStats) float64 { return float64(st.MaxBytes) }))
	reg.CounterFunc("lotus_store_hits_total", "disk store reads that verified and served",
		diskCount(func(st diskStats) uint64 { return st.Hits }))
	reg.CounterFunc("lotus_store_misses_total", "disk store reads that missed or failed verification",
		diskCount(func(st diskStats) uint64 { return st.Misses }))
	reg.CounterFunc("lotus_store_gc_removed_total", "disk store entries removed by GC (age or size bound)",
		diskCount(func(st diskStats) uint64 { return st.Removed }))

	return m
}

// Registry exposes the underlying registry (the /metrics handler, and a
// place for embedding layers to add role-specific series).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Cluster-layer hooks. Each is safe for concurrent use and a no-op-cheap
// atomic bump; the cluster package calls these so the series live in the
// one registry every role scrapes.

// SetWorkers records the coordinator's registered-worker count.
func (m *Metrics) SetWorkers(n int) { m.workers.Set(float64(n)) }

// UnitDispatched counts one unit handed to a worker.
func (m *Metrics) UnitDispatched() { m.unitsDispatched.Inc() }

// UnitRetried counts one unit requeued after a worker transport failure.
func (m *Metrics) UnitRetried() { m.unitRetries.Inc() }

// UnitStolen counts one adaptive wave pulled by an idle worker.
func (m *Metrics) UnitStolen() { m.unitSteals.Inc() }

// UnitExecuted counts one unit this node executed for a coordinator.
func (m *Metrics) UnitExecuted() { m.unitsExecuted.Inc() }

// AnnounceFailed counts one failed announce/heartbeat attempt.
func (m *Metrics) AnnounceFailed() { m.announceFailures.Inc() }

// observeRequest records one finished request on the per-route series.
func (m *Metrics) observeRequest(route string, d time.Duration) {
	m.reqTotal[route].Inc()
	m.reqDur[route].Observe(d.Seconds())
}

// reqInfo is the per-request scratchpad the middleware plants in the
// context; handlers annotate it so the access log can say what the cache
// did without the middleware re-deriving it.
type reqInfo struct {
	key   string
	cache string // hit | disk | remote | miss ("" = route has no cache semantics)
}

type reqInfoCtxKey struct{}

// noteKey records the request's cache key for the access log. Nil-safe for
// handlers reached without the middleware (direct mux use in tests).
func noteKey(r *http.Request, key string) {
	if info, ok := r.Context().Value(reqInfoCtxKey{}).(*reqInfo); ok {
		info.key = key
	}
}

// noteCache records the cache outcome for the access log.
func noteCache(r *http.Request, outcome string) {
	if info, ok := r.Context().Value(reqInfoCtxKey{}).(*reqInfo); ok {
		info.cache = outcome
	}
}

// statusWriter captures status code and body bytes for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Observe wraps a handler tree with the server's request instrumentation:
// per-route counters and latency histograms, plus one structured log line
// per request when logging is configured. The cluster roles route their
// whole mux (cluster endpoints + the embedded service via Routes) through
// the embedded server's Observe, so every request is counted exactly once.
func (s *Server) Observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r)
		info := &reqInfo{}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoCtxKey{}, info))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.met.observeRequest(route, elapsed)
		if s.alog != nil {
			s.alog.record(r.Method, route, r.URL.Path, info, sw.status, sw.bytes, elapsed)
		}
	})
}

// Routes returns the server's uninstrumented route mux. Embedding layers
// (cluster coordinator/worker) mount this as their fallback handler and
// wrap their combined mux in Observe once, so nothing double-counts.
func (s *Server) Routes() http.Handler { return s.mux }

// Metrics returns the server's instrument set.
func (s *Server) Metrics() *Metrics { return s.met }
