package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySpec is a sub-millisecond coding run: small population, short
// horizon, two replicates, no sweep.
const tinySpec = `{
  "name": "tiny",
  "substrate": "coding",
  "nodes": 24,
  "rounds": 8,
  "replicates": 2,
  "adversary": {"kind": "ideal", "fraction": 0.2, "satiateFraction": 0.5},
  "params": {"symbols": 4, "payload": 8}
}`

// tinySpecVariant is the same spec with reordered keys, extra whitespace,
// and the dead defaults spelled out — a different byte stream, the same
// canonical run.
const tinySpecVariant = `{
  "params": {"payload": 8, "symbols": 4},
  "substrate": "coding",
  "adversary": {"satiateFraction": 0.5, "kind": "ideal", "fraction": 0.2},
  "defense": {"kind": "none"},
  "rounds": 8,
  "nodes": 24,
  "replicates": 2,

  "name": "tiny"
}`

// mustNew builds a Server, failing the test on a construction error.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func submit(t *testing.T, base, body string) submitResponse {
	t.Helper()
	code, data := postJSON(t, base+"/experiments", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("POST /experiments: status %d: %s", code, data)
	}
	var resp submitResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("submit response: %v\n%s", err, data)
	}
	return resp
}

// waitDone polls the status endpoint until the job reports done, asserting
// the progress matrix: done counters only ever move forward, and totals —
// exact for fixed runs, a shrinking cap estimate for adaptive ones — only
// ever move down.
func waitDone(t *testing.T, base, key string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	lastDone := -1
	lastTotal := 0
	for time.Now().Before(deadline) {
		code, _, data := getBody(t, base+"/jobs/"+key)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d: %s", key, code, data)
		}
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("job status: %v\n%s", err, data)
		}
		if st.ReplicatesTotal > 0 {
			if lastTotal > 0 && st.ReplicatesTotal > lastTotal {
				t.Fatalf("replicatesTotal grew: %d after %d", st.ReplicatesTotal, lastTotal)
			}
			lastTotal = st.ReplicatesTotal
		}
		switch st.Status {
		case StateQueued, StateRunning:
			if st.ReplicatesDone < lastDone {
				t.Fatalf("progress went backwards: %d after %d", st.ReplicatesDone, lastDone)
			}
			lastDone = st.ReplicatesDone
		case StateDone:
			if st.ReplicatesTotal > 0 && st.ReplicatesDone != st.ReplicatesTotal {
				t.Fatalf("done with %d/%d replicates", st.ReplicatesDone, st.ReplicatesTotal)
			}
			return st
		case StateFailed:
			t.Fatalf("job failed: %s", st.Error)
		default:
			t.Fatalf("unknown job state %q", st.Status)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", key)
	return jobStatus{}
}

// TestServeCacheHit is the acceptance scenario: two identical POSTs produce
// one simulation and byte-identical artifacts; a canonicalization variant
// of the same spec is the same key; a differing seed misses.
func TestServeCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	body := fmt.Sprintf(`{"spec": %s, "seed": 5}`, tinySpec)
	first := submit(t, ts.URL, body)
	if first.Status != StateQueued {
		t.Fatalf("first submit status %q, want queued", first.Status)
	}
	waitDone(t, ts.URL, first.Key)

	code, hdr, art1 := getBody(t, ts.URL+"/results/"+first.Key)
	if code != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", code, art1)
	}
	if etag := hdr.Get("ETag"); !strings.Contains(etag, "sha256:") {
		t.Fatalf("result ETag %q is not a content address", etag)
	}

	// Identical request: cache hit, no new simulation.
	second := submit(t, ts.URL, body)
	if !second.Cached || second.Status != StateDone {
		t.Fatalf("second submit: cached=%v status=%q, want a done cache hit", second.Cached, second.Status)
	}
	if second.Key != first.Key {
		t.Fatalf("identical requests keyed differently: %s vs %s", second.Key, first.Key)
	}
	if second.Address == "" {
		t.Fatal("cache hit carries no artifact address")
	}
	_, _, art2 := getBody(t, ts.URL+"/results/"+second.Key)
	if !bytes.Equal(art1, art2) {
		t.Fatalf("artifacts differ across the cache hit:\n%s\n%s", art1, art2)
	}

	// Key-order/whitespace/spelled-out-default variant: same key, still a
	// hit.
	variant := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 5}`, tinySpecVariant))
	if variant.Key != first.Key || !variant.Cached {
		t.Fatalf("canonicalization variant missed the cache: key %s vs %s, cached=%v", variant.Key, first.Key, variant.Cached)
	}

	if got := s.Runs(); got != 1 {
		t.Fatalf("3 equivalent submits ran %d simulations, want 1", got)
	}

	// A differing seed is a different run.
	other := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 6}`, tinySpec))
	if other.Key == first.Key {
		t.Fatal("different seed produced the same cache key")
	}
	if other.Cached {
		t.Fatal("different seed hit the cache")
	}
	waitDone(t, ts.URL, other.Key)
	if got := s.Runs(); got != 2 {
		t.Fatalf("differing seed should run once more: %d runs, want 2", got)
	}
}

// TestServeSingleflight: concurrent identical requests share one job and
// one simulation.
func TestServeSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"spec": %s, "seed": 11, "replicates": 8}`, tinySpec)

	const clients = 8
	keys := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/experiments", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			var sr submitResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Errorf("client %d: %v\n%s", i, err, data)
				return
			}
			keys[i] = sr.Key
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < clients; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("client %d keyed %s, client 0 keyed %s", i, keys[i], keys[0])
		}
	}
	waitDone(t, ts.URL, keys[0])
	if got := s.Runs(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want 1", clients, got)
	}
}

// TestServeProgress: a longer run's status advances through running
// replicate counts to done, and the result serves in all three formats.
func TestServeProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 3, "replicates": 64}`, tinySpec))
	st := waitDone(t, ts.URL, resp.Key)
	if st.ReplicatesTotal != 64 {
		t.Fatalf("replicatesTotal = %d, want 64", st.ReplicatesTotal)
	}

	code, _, jsonBody := getBody(t, ts.URL+"/results/"+resp.Key+"?format=json")
	if code != http.StatusOK || !json.Valid(jsonBody) {
		t.Fatalf("json result: status %d: %s", code, jsonBody)
	}
	code, hdr, text := getBody(t, ts.URL+"/results/"+resp.Key+"?format=text")
	if code != http.StatusOK || !bytes.Contains(text, []byte("## ")) {
		t.Fatalf("text result: status %d: %s", code, text)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}
	code, _, csv := getBody(t, ts.URL+"/results/"+resp.Key+"?format=csv")
	if code != http.StatusOK || !bytes.Contains(csv, []byte(",")) {
		t.Fatalf("csv result: status %d: %s", code, csv)
	}
	code, _, bad := getBody(t, ts.URL+"/results/"+resp.Key+"?format=yaml")
	if code != http.StatusBadRequest {
		t.Fatalf("yaml format: status %d: %s", code, bad)
	}
}

// tinyAdaptiveSpec is a sweep under a loose adaptive plan: a bounded
// metric meets a 0.75 half-width by six replicates at the latest, so every
// point stops far below the 64-replicate cap.
const tinyAdaptiveSpec = `{
  "name": "tiny-auto",
  "substrate": "coding",
  "nodes": 24,
  "rounds": 8,
  "adversary": {"kind": "ideal", "fraction": 0.2},
  "sweep": {"axis": "adversary.satiateFraction", "from": 0, "to": 0.5, "points": 3},
  "precision": {"halfWidth": 0.75, "minReps": 2, "maxReps": 64, "batch": 4},
  "params": {"symbols": 4, "payload": 8}
}`

// TestServeAdaptiveProgress pins the fix for fixed-product totals: under
// an adaptive plan the job's ReplicatesTotal starts at the points x
// maxReps cap, only ever shrinks (waitDone asserts that on every poll),
// and lands exactly on the replicates actually run — plus the per-point
// reps-so-far/CI-so-far readout and the reps series in the artifact.
func TestServeAdaptiveProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 9}`, tinyAdaptiveSpec))
	st := waitDone(t, ts.URL, resp.Key)

	const cap = 3 * 64
	if st.ReplicatesTotal >= cap {
		t.Fatalf("final total %d never shrank from the %d cap — totals are still a fixed product", st.ReplicatesTotal, cap)
	}
	if st.ReplicatesDone != st.ReplicatesTotal {
		t.Fatalf("done %d != total %d after convergence", st.ReplicatesDone, st.ReplicatesTotal)
	}
	if st.Point == nil || st.PointHalfWidth == nil {
		t.Fatalf("adaptive job status missing the per-point readout: %+v", st)
	}
	if *st.Point != 2 {
		t.Fatalf("final point index %d, want the last sweep point 2", *st.Point)
	}
	if st.PointReplicates < 2 || *st.PointHalfWidth > 0.75 {
		t.Fatalf("per-point readout implausible: %d reps, half-width %g", st.PointReplicates, *st.PointHalfWidth)
	}

	// The artifact carries the per-point replicate counts, all below the cap.
	code, _, body := getBody(t, ts.URL+"/results/"+resp.Key)
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, body)
	}
	var art struct {
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				Y float64 `json:"y"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &art); err != nil {
		t.Fatal(err)
	}
	sum := 0
	found := false
	for _, s := range art.Series {
		if s.Name != "reps" {
			continue
		}
		found = true
		for i, p := range s.Points {
			if p.Y < 2 || p.Y >= 64 {
				t.Fatalf("point %d ran %g replicates, want an early stop in [2,64)", i, p.Y)
			}
			sum += int(p.Y)
		}
	}
	if !found {
		t.Fatalf("adaptive artifact has no reps series: %s", body)
	}
	if sum != st.ReplicatesDone {
		t.Fatalf("artifact reps sum %d != reported done %d", sum, st.ReplicatesDone)
	}

	// A fixed-run job must NOT grow the per-point readout.
	fixed := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 9}`, tinySpec))
	fst := waitDone(t, ts.URL, fixed.Key)
	if fst.Point != nil || fst.PointHalfWidth != nil {
		t.Fatalf("fixed run grew an adaptive readout: %+v", fst)
	}

	// A request-level replicates override beats an inert precision block
	// (halfWidth 0, maxReps just a spelling of the fixed count) instead of
	// being silently shadowed by it.
	inert := strings.Replace(tinyAdaptiveSpec, `"halfWidth": 0.75`, `"halfWidth": 0`, 1)
	over := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 9, "replicates": 5}`, inert))
	ost := waitDone(t, ts.URL, over.Key)
	if ost.ReplicatesTotal != 3*5 {
		t.Fatalf("replicates override shadowed by inert precision: total %d, want %d", ost.ReplicatesTotal, 3*5)
	}
}

// TestServeRegistryScenario: a registry name with -set-style overrides runs
// end to end, and /scenarios lists the catalogue.
func TestServeRegistryScenario(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := submit(t, ts.URL, `{"scenario": "x/none-coding", "seed": 2,
		"set": ["replicates=1", "rounds=6", "nodes=16", "sweep.points=2"]}`)
	waitDone(t, ts.URL, resp.Key)
	code, _, body := getBody(t, ts.URL+"/results/"+resp.Key)
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, body)
	}

	code, _, list := getBody(t, ts.URL+"/scenarios")
	if code != http.StatusOK {
		t.Fatalf("scenarios: status %d", code)
	}
	var infos []scenarioInfo
	if err := json.Unmarshal(list, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) < 40 {
		t.Fatalf("catalogue lists %d scenarios, want the full registry", len(infos))
	}

	code, _, hz := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	var h health
	if err := json.Unmarshal(hz, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Runs < 1 || h.Cache.Entries < 1 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestServeBadRequests: hostile and malformed submissions fail with JSON
// errors, never crash.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty":             `{}`,
		"not json":          `{"spec": `,
		"both":              fmt.Sprintf(`{"scenario": "gossip-trade", "spec": %s}`, tinySpec),
		"unknown scenario":  `{"scenario": "no-such"}`,
		"unknown field":     `{"scenariox": "gossip-trade"}`,
		"bad substrate":     `{"spec": {"name": "x", "substrate": "quantum"}}`,
		"hostile targets":   `{"spec": {"name": "x", "substrate": "gossip", "nodes": 4, "adversary": {"targets": [9]}}}`,
		"bad override":      `{"scenario": "gossip-trade", "set": ["nodes=purple"]}`,
		"negative override": `{"scenario": "gossip-trade", "replicates": -1}`,
	} {
		code, data := postJSON(t, ts.URL+"/experiments", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, code, data)
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body is not {\"error\": ...}: %s", name, data)
		}
	}

	if code, _, data := getBody(t, ts.URL+"/jobs/sha256:nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d: %s", code, data)
	}
	if code, _, data := getBody(t, ts.URL+"/results/sha256:nope"); code != http.StatusNotFound {
		t.Fatalf("unknown result: status %d: %s", code, data)
	}
}

// TestServeQueueFull: with depth 1 and the executor busy, a second distinct
// request queues and a third is refused with 503.
func TestServeQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 1})

	// Occupy the executor with a run long enough to observe (tiny replicates
	// are ~tens of microseconds; tens of thousands of them hold the executor
	// for on the order of a second).
	busy := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 21, "replicates": 30000}`, tinySpec))
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _, data := getBody(t, ts.URL+"/jobs/"+busy.Key)
		if code != http.StatusOK {
			t.Fatalf("busy job status %d: %s", code, data)
		}
		var st jobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == StateRunning {
			break
		}
		if st.Status != StateQueued {
			t.Fatalf("busy job reached %q before the queue test ran", st.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("busy job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	queued := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 22}`, tinySpec))
	if queued.Status != StateQueued {
		t.Fatalf("second request status %q, want queued", queued.Status)
	}
	code, data := postJSON(t, ts.URL+"/experiments", fmt.Sprintf(`{"spec": %s, "seed": 23}`, tinySpec))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("third request: status %d, want 503: %s", code, data)
	}
	waitDone(t, ts.URL, busy.Key)
	waitDone(t, ts.URL, queued.Key)
}
