package serve

import (
	"container/list"
	"sync"
)

// resultCache is the bounded, content-addressed result store: request cache
// key → canonical artifact JSON plus the artifact's own content address.
// Eviction is LRU by total body bytes, so the bound tracks what actually
// costs memory rather than an entry count; the hot path of the server is a
// Get here.
type resultCache struct {
	mu      sync.Mutex
	max     int64 // byte budget; at least the newest entry is always kept
	size    int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key     string
	body    []byte // canonical artifact JSON
	address string // metrics.Artifact content address (served as ETag)
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached body and artifact address for key, bumping its
// recency. Callers must not mutate the returned body.
func (c *resultCache) Get(key string) (body []byte, address string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.address, true
}

// Put stores body under key and evicts least-recently-used entries until
// the byte budget holds again. The newest entry always survives, even if it
// alone exceeds the budget — a job's own result must be retrievable at
// least once.
func (c *resultCache) Put(key string, body []byte, address string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.size += int64(len(body)) - int64(len(e.body))
		e.body, e.address = body, address
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, body: body, address: address})
		c.entries[key] = el
		c.size += int64(len(body))
	}
	for c.size > c.max && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, e.key)
		c.size -= int64(len(e.body))
		c.evictions++
	}
}

// cacheStats is the /healthz view of the cache.
type cacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"maxBytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *resultCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.size,
		MaxBytes:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
