package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lotuseater/internal/metrics"
)

// diskStore persists canonical artifact bodies across restarts. The cache
// key is already content-addressed, so persistence is exactly what the
// ROADMAP promised it would be: write the body to a file named by its
// content address, keep a small index from cache key to address, and
// re-derive everything else.
//
// Layout under the store directory:
//
//	index.json            cache key -> {address, size, storedUnix}
//	blobs/sha256-<hex>    one canonical artifact body per unique address
//
// Two cache keys whose runs converged on identical bytes share one blob
// (content addressing dedupes for free); a blob is deleted only when its
// last index entry goes.
//
// Crash safety is temp+rename: both blobs and the index are written to a
// temporary file in the same directory, fsynced, and renamed into place, so
// a crash leaves either the old state or the new one, never a torn file.
// Disk is never trusted on the way back in: every Get re-hashes the blob
// and drops the entry (and file) on mismatch, and open validates the index
// against what is actually on disk.
//
// A GC loop bounds the store by age (entries stored longer than maxAge ago)
// and by size (oldest-stored entries evict until the byte budget holds;
// the newest entry always survives, mirroring the in-memory LRU's
// invariant). The size bound is also enforced inline on Put so a burst
// can't overshoot by more than one artifact between ticks.
type diskStore struct {
	dir      string
	maxBytes int64
	maxAge   time.Duration
	now      func() time.Time // injected by tests; time.Now in production

	mu    sync.Mutex
	index map[string]*storeEntry
	refs  map[string]int // address -> live index entries
	size  int64          // unique blob bytes

	hits, misses, removed uint64 // exposed via Stats for /metrics

	gcStop   chan struct{}
	gcDone   chan struct{}
	stopOnce sync.Once
}

// storeEntry is one index row.
type storeEntry struct {
	Address string `json:"address"`
	Size    int64  `json:"size"`
	Stored  int64  `json:"storedUnix"`
}

// storeIndex is the on-disk index file shape.
type storeIndex struct {
	Version int                    `json:"version"`
	Entries map[string]*storeEntry `json:"entries"`
}

// openDiskStore loads (or initializes) a store rooted at dir. Entries whose
// blob is missing or mis-sized are dropped; blobs and temp files nothing
// references are swept. maxBytes <= 0 means 1 GiB; maxAge <= 0 means no age
// bound.
func openDiskStore(dir string, maxBytes int64, maxAge time.Duration) (*diskStore, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating store dir: %w", err)
	}
	st := &diskStore{
		dir:      dir,
		maxBytes: maxBytes,
		maxAge:   maxAge,
		now:      time.Now,
		index:    make(map[string]*storeEntry),
		refs:     make(map[string]int),
	}
	if err := st.load(); err != nil {
		return nil, err
	}
	return st, nil
}

// load reads and validates the index, then sweeps the blob directory of
// anything unreferenced (crash leftovers, entries dropped below).
func (st *diskStore) load() error {
	data, err := os.ReadFile(filepath.Join(st.dir, "index.json"))
	if err == nil {
		var idx storeIndex
		// A corrupt index is recoverable — the blobs are self-describing,
		// but without key->address rows we can't serve them, so start
		// empty rather than fail the server.
		if json.Unmarshal(data, &idx) == nil {
			for key, e := range idx.Entries {
				if e == nil || !validAddress(e.Address) {
					continue
				}
				fi, err := os.Stat(st.blobPath(e.Address))
				if err != nil || fi.Size() != e.Size {
					continue // blob gone or torn; drop the row
				}
				st.index[key] = e
				if st.refs[e.Address] == 0 {
					st.size += e.Size
				}
				st.refs[e.Address]++
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("serve: reading store index: %w", err)
	}
	// Sweep unreferenced files so dropped rows and crashed writes don't
	// leak disk forever.
	entries, err := os.ReadDir(filepath.Join(st.dir, "blobs"))
	if err != nil {
		return fmt.Errorf("serve: scanning blobs: %w", err)
	}
	for _, de := range entries {
		addr := addressOfBlobName(de.Name())
		if addr == "" || st.refs[addr] == 0 {
			os.Remove(filepath.Join(st.dir, "blobs", de.Name()))
		}
	}
	if rootEntries, err := os.ReadDir(st.dir); err == nil {
		for _, de := range rootEntries {
			if strings.HasPrefix(de.Name(), ".tmp-") {
				os.Remove(filepath.Join(st.dir, de.Name()))
			}
		}
	}
	// Persist the validated view so the next open starts clean.
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.flushIndexLocked()
}

// Get returns the body stored under key, re-hashing it against its address
// — never trust disk. A corrupt or missing blob drops the entry and
// reports a miss, so the caller recomputes instead of serving garbage.
func (st *diskStore) Get(key string) (body []byte, address string, ok bool) {
	st.mu.Lock()
	e, found := st.index[key]
	if !found {
		st.misses++
		st.mu.Unlock()
		return nil, "", false
	}
	addr := e.Address
	st.mu.Unlock()

	body, err := os.ReadFile(st.blobPath(addr))
	if err != nil || metrics.AddressBytes(body) != addr {
		st.mu.Lock()
		// Re-check under the lock — a concurrent Put may have replaced the row.
		if cur, still := st.index[key]; still && cur.Address == addr {
			st.dropLocked(key)
			st.flushIndexLocked()
		}
		st.misses++
		st.mu.Unlock()
		return nil, "", false
	}
	st.mu.Lock()
	st.hits++
	st.mu.Unlock()
	return body, addr, true
}

// Put persists body under key. Best effort: an I/O failure loses
// persistence, not correctness — the in-memory cache still has the result.
func (st *diskStore) Put(key string, body []byte, address string) {
	if !validAddress(address) {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.index[key]; ok {
		if e.Address == address {
			return // already stored
		}
		st.dropLocked(key)
	}
	if st.refs[address] == 0 {
		if err := writeFileAtomic(st.blobPath(address), filepath.Join(st.dir, "blobs"), body); err != nil {
			return
		}
		st.size += int64(len(body))
	}
	st.refs[address]++
	st.index[key] = &storeEntry{Address: address, Size: int64(len(body)), Stored: st.now().Unix()}
	st.gcSizeLocked()
	st.flushIndexLocked()
}

// dropLocked removes key's index row, deleting the blob when its last
// reference goes.
func (st *diskStore) dropLocked(key string) {
	e, ok := st.index[key]
	if !ok {
		return
	}
	delete(st.index, key)
	st.refs[e.Address]--
	if st.refs[e.Address] <= 0 {
		delete(st.refs, e.Address)
		os.Remove(st.blobPath(e.Address))
		st.size -= e.Size
	}
}

// gcOnce applies the age bound then the size bound, flushing the index if
// anything went. It returns how many entries were removed.
func (st *diskStore) gcOnce() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	removed := st.gcAgeLocked() + st.gcSizeLocked()
	if removed > 0 {
		st.flushIndexLocked()
	}
	return removed
}

func (st *diskStore) gcAgeLocked() int {
	if st.maxAge <= 0 {
		return 0
	}
	cutoff := st.now().Add(-st.maxAge).Unix()
	removed := 0
	for _, key := range st.keysOldestFirstLocked() {
		if st.index[key].Stored >= cutoff {
			break
		}
		st.dropLocked(key)
		removed++
	}
	st.removed += uint64(removed)
	return removed
}

func (st *diskStore) gcSizeLocked() int {
	if st.size <= st.maxBytes {
		return 0
	}
	removed := 0
	for _, key := range st.keysOldestFirstLocked() {
		if st.size <= st.maxBytes || len(st.index) <= 1 {
			break
		}
		st.dropLocked(key)
		removed++
	}
	st.removed += uint64(removed)
	return removed
}

// keysOldestFirstLocked orders index keys by (stored time, key) — a
// deterministic eviction order regardless of map iteration.
func (st *diskStore) keysOldestFirstLocked() []string {
	keys := make([]string, 0, len(st.index))
	for k := range st.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := st.index[keys[i]], st.index[keys[j]]
		if a.Stored != b.Stored {
			return a.Stored < b.Stored
		}
		return keys[i] < keys[j]
	})
	return keys
}

// flushIndexLocked writes the index via temp+rename. encoding/json sorts
// map keys, so the file bytes are deterministic for a given state.
func (st *diskStore) flushIndexLocked() error {
	data, err := json.Marshal(storeIndex{Version: 1, Entries: st.index})
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(st.dir, "index.json"), st.dir, data)
}

// startGC runs the GC loop until Close. interval <= 0 means one minute.
func (st *diskStore) startGC(interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	st.gcStop = make(chan struct{})
	st.gcDone = make(chan struct{})
	go func() {
		defer close(st.gcDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-st.gcStop:
				return
			case <-t.C:
				st.gcOnce()
			}
		}
	}()
}

// Close stops the GC loop and waits for it to exit. Idempotent; the index
// is already durable (flushed on every mutation), so there is nothing else
// to do.
func (st *diskStore) Close() {
	st.stopOnce.Do(func() {
		if st.gcStop != nil {
			close(st.gcStop)
			<-st.gcDone
		}
	})
}

// diskStats is the /metrics (and test) view of the store.
type diskStats struct {
	Entries  int
	Bytes    int64
	MaxBytes int64
	Hits     uint64
	Misses   uint64
	Removed  uint64
}

func (st *diskStore) Stats() diskStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return diskStats{
		Entries:  len(st.index),
		Bytes:    st.size,
		MaxBytes: st.maxBytes,
		Hits:     st.hits,
		Misses:   st.misses,
		Removed:  st.removed,
	}
}

// blobPath maps an address "sha256:<hex>" to its file. validAddress gates
// every address before it reaches here, so the name is always a safe flat
// filename.
func (st *diskStore) blobPath(address string) string {
	return filepath.Join(st.dir, "blobs", "sha256-"+strings.TrimPrefix(address, "sha256:"))
}

// addressOfBlobName inverts blobPath's naming, "" for foreign files.
func addressOfBlobName(name string) string {
	hex, ok := strings.CutPrefix(name, "sha256-")
	if !ok {
		return ""
	}
	addr := "sha256:" + hex
	if !validAddress(addr) {
		return ""
	}
	return addr
}

// validAddress accepts exactly the artifact address form sha256:<64 hex>.
// Anything else — including a corrupt index trying to smuggle a path — is
// rejected before it can touch the filesystem.
func validAddress(address string) bool {
	hex, ok := strings.CutPrefix(address, "sha256:")
	if !ok || len(hex) != 64 {
		return false
	}
	for i := 0; i < len(hex); i++ {
		c := hex[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// writeFileAtomic writes data to path via a temp file in tmpDir (same
// filesystem) + fsync + rename, so a crash never leaves a torn file.
func writeFileAtomic(path, tmpDir string, data []byte) error {
	f, err := os.CreateTemp(tmpDir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
