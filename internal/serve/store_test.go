package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"lotuseater/internal/metrics"
)

// TestStoreSurvivesRestart is the acceptance pin for disk persistence: a
// server computes a result, dies (Close — the hard-kill equivalent for
// everything in memory), and a fresh server over the same store directory
// answers GET /results/{key} from disk with the identical ETag and
// byte-identical body, without executing a single simulation.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Version: "v-test", StoreDir: dir}

	s1, ts1 := newTestServer(t, cfg)
	resp := submit(t, ts1.URL, fmt.Sprintf(`{"spec": %s, "seed": 7}`, tinySpec))
	waitDone(t, ts1.URL, resp.Key)
	code, hdr1, body1 := getBody(t, ts1.URL+"/results/"+resp.Key)
	if code != http.StatusOK {
		t.Fatalf("first server result: status %d", code)
	}
	etag1 := hdr1.Get("ETag")
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process, same directory: the in-memory cache starts empty, so
	// this answer can only come from disk.
	s2, ts2 := newTestServer(t, cfg)
	code, hdr2, body2 := getBody(t, ts2.URL+"/results/"+resp.Key)
	if code != http.StatusOK {
		t.Fatalf("restarted server result: status %d", code)
	}
	if hdr2.Get("ETag") != etag1 {
		t.Fatalf("ETag changed across restart: %q vs %q", hdr2.Get("ETag"), etag1)
	}
	if string(body2) != string(body1) {
		t.Fatalf("body changed across restart (%d vs %d bytes)", len(body2), len(body1))
	}
	if s2.Runs() != 0 {
		t.Fatalf("restarted server recomputed (%d runs) instead of reading disk", s2.Runs())
	}

	// A re-submit is an immediate cache hit too — no queue, no run.
	re := submit(t, ts2.URL, fmt.Sprintf(`{"spec": %s, "seed": 7}`, tinySpec))
	if !re.Cached || re.Status != StateDone {
		t.Fatalf("resubmit after restart: %+v, want cached done", re)
	}
	if s2.Runs() != 0 {
		t.Fatalf("resubmit ran %d simulations", s2.Runs())
	}
}

// TestStoreNeverTrustsDisk: a blob corrupted (or truncated) while the
// server was away fails its re-hash on read and reports a miss — the entry
// drops and the server recomputes rather than serving garbage.
func TestStoreNeverTrustsDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := openDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"canonical":"artifact"}`)
	addr := metrics.AddressBytes(body)
	st.Put("key-1", body, addr)

	// Corrupt the blob in place, keeping its size (so index validation at
	// the next open cannot catch it — only the content re-hash can).
	blob := st.blobPath(addr)
	raw, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(blob, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := st.Get("key-1"); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if _, err := os.Stat(blob); !os.IsNotExist(err) {
		t.Fatal("corrupt blob not removed after failed verification")
	}
	if stats := st.Stats(); stats.Entries != 0 || stats.Misses != 1 {
		t.Fatalf("stats after corruption: %+v", stats)
	}
	st.Close()
}

// TestStoreGC: the age and size bounds evict deterministically — oldest
// stored first, newest always survives — under an injected clock.
func TestStoreGC(t *testing.T) {
	mkBody := func(tag string, n int) []byte {
		b := make([]byte, n)
		copy(b, tag)
		return b
	}
	put := func(st *diskStore, key, tag string, n int) {
		body := mkBody(tag, n)
		st.Put(key, body, metrics.AddressBytes(body))
	}

	t.Run("age bound", func(t *testing.T) {
		st, err := openDiskStore(t.TempDir(), 0, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		now := time.Unix(1_000_000, 0)
		st.now = func() time.Time { return now }
		put(st, "old", "a", 10)
		now = now.Add(2 * time.Hour)
		put(st, "fresh", "b", 10)
		if removed := st.gcOnce(); removed != 1 {
			t.Fatalf("age GC removed %d entries, want 1", removed)
		}
		if _, _, ok := st.Get("old"); ok {
			t.Fatal("expired entry survived age GC")
		}
		if _, _, ok := st.Get("fresh"); !ok {
			t.Fatal("fresh entry evicted by age GC")
		}
	})

	t.Run("size bound evicts oldest first", func(t *testing.T) {
		st, err := openDiskStore(t.TempDir(), 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		now := time.Unix(2_000_000, 0)
		st.now = func() time.Time { return now }
		for i, key := range []string{"k0", "k1", "k2"} {
			put(st, key, fmt.Sprintf("b%d", i), 40)
			now = now.Add(time.Second)
		}
		// 120 bytes against a 100-byte budget: k0 (oldest) goes, inline on Put.
		if _, _, ok := st.Get("k0"); ok {
			t.Fatal("oldest entry survived the size bound")
		}
		for _, key := range []string{"k1", "k2"} {
			if _, _, ok := st.Get(key); !ok {
				t.Fatalf("entry %s evicted out of order", key)
			}
		}
	})

	t.Run("newest survives an over-budget artifact", func(t *testing.T) {
		st, err := openDiskStore(t.TempDir(), 50, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		now := time.Unix(3_000_000, 0)
		st.now = func() time.Time { return now }
		put(st, "small", "a", 10)
		now = now.Add(time.Second)
		put(st, "huge", "b", 500)
		if _, _, ok := st.Get("small"); ok {
			t.Fatal("small entry survived despite the huge newest entry")
		}
		if _, _, ok := st.Get("huge"); !ok {
			t.Fatal("newest entry did not survive its own Put")
		}
	})
}

// TestStoreIndexSurvivesReload: a reopened store sees exactly the surviving
// entries, shares blobs between keys with identical bodies, and sweeps
// leftovers that nothing references.
func TestStoreIndexSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	st, err := openDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	shared := []byte("shared-body-bytes")
	addr := metrics.AddressBytes(shared)
	st.Put("k1", shared, addr)
	st.Put("k2", shared, addr) // same bytes: one blob, two index rows
	if stats := st.Stats(); stats.Entries != 2 || stats.Bytes != int64(len(shared)) {
		t.Fatalf("dedup accounting: %+v", stats)
	}
	st.Close()

	// Drop a stray file and a fake temp file; reload must sweep both.
	if err := os.WriteFile(filepath.Join(dir, "blobs", "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := openDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, key := range []string{"k1", "k2"} {
		body, gotAddr, ok := st2.Get(key)
		if !ok || string(body) != string(shared) || gotAddr != addr {
			t.Fatalf("entry %s after reload: ok=%v addr=%q", key, ok, gotAddr)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "blobs", "junk")); !os.IsNotExist(err) {
		t.Fatal("unreferenced blob not swept on reload")
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-123")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept on reload")
	}
}

// TestStoreGCLoopLifecycle: the GC loop starts with the server, actually
// collects on its ticks, and drains on shutdown — no orphaned tickers or
// goroutines after Close.
func TestStoreGCLoopLifecycle(t *testing.T) {
	warmPool(t)
	base := runtime.NumGoroutine()

	dir := t.TempDir()
	s := mustNew(t, Config{
		Version:         "v-test",
		StoreDir:        dir,
		StoreMaxAge:     time.Millisecond,
		StoreGCInterval: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(s)

	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 13}`, tinySpec))
	waitDone(t, ts.URL, resp.Key)

	// With a millisecond max age, the running GC loop must expire the entry
	// on one of its ticks — proof the loop is alive without poking internals.
	deadline := time.Now().Add(5 * time.Second)
	for s.disk.Stats().Entries > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("GC loop never expired the entry: %+v", s.disk.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)

	// Close again: idempotent, no panic, no hang.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
