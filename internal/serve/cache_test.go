package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCacheLRUByBytes: eviction is by total body bytes in least-recently-
// used order, Get bumps recency, and stats track hits/misses/evictions.
func TestCacheLRUByBytes(t *testing.T) {
	c := newResultCache(100)
	body := func(n int) []byte { return bytes.Repeat([]byte{'x'}, n) }

	c.Put("a", body(40), "addr-a")
	c.Put("b", body(40), "addr-b")
	if _, _, ok := c.Get("a"); !ok { // bump a: b is now the LRU
		t.Fatal("a missing")
	}
	c.Put("c", body(40), "addr-c") // 120 > 100: evict b
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, addr, ok := c.Get("a"); !ok || addr != "addr-a" {
		t.Fatalf("a evicted out of order (ok=%v addr=%q)", ok, addr)
	}
	if _, _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}

	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hit/miss accounting = %+v", st)
	}
}

// TestCacheOversizeEntrySurvives: a single result larger than the whole
// budget is still stored (and evicts everything else) so a finished job's
// artifact is always retrievable at least once.
func TestCacheOversizeEntrySurvives(t *testing.T) {
	c := newResultCache(10)
	c.Put("small", []byte("abc"), "a1")
	c.Put("big", bytes.Repeat([]byte{'y'}, 50), "a2")
	if _, _, ok := c.Get("small"); ok {
		t.Fatal("small entry should have been evicted for the oversize one")
	}
	got, addr, ok := c.Get("big")
	if !ok || len(got) != 50 || addr != "a2" {
		t.Fatalf("oversize entry not retrievable: ok=%v len=%d addr=%q", ok, len(got), addr)
	}
}

// TestCachePutNewestSurvives pins the Put invariant across every update
// shape: whatever combination of inserts, update-grow, update-shrink, or a
// single entry over the whole budget, the key just Put always answers its
// latest body — eviction may clear everything else, never the newest entry.
func TestCachePutNewestSurvives(t *testing.T) {
	body := func(n int) []byte { return bytes.Repeat([]byte{'z'}, n) }
	cases := []struct {
		name string
		max  int64
		ops  func(c *resultCache)
		key  string // the last key Put
		want int    // its expected body length
	}{
		{
			name: "update grows past budget",
			max:  100,
			ops: func(c *resultCache) {
				c.Put("a", body(30), "a1")
				c.Put("b", body(30), "b1")
				c.Put("a", body(90), "a2") // grow a: total would be 120
			},
			key: "a", want: 90,
		},
		{
			name: "update grows beyond entire budget",
			max:  100,
			ops: func(c *resultCache) {
				c.Put("a", body(30), "a1")
				c.Put("b", body(30), "b1")
				c.Put("b", body(150), "b2") // single entry over budget via update
			},
			key: "b", want: 150,
		},
		{
			name: "update shrinks",
			max:  100,
			ops: func(c *resultCache) {
				c.Put("a", body(90), "a1")
				c.Put("a", body(10), "a2")
			},
			key: "a", want: 10,
		},
		{
			name: "single insert over budget",
			max:  10,
			ops: func(c *resultCache) {
				c.Put("a", body(50), "a1")
			},
			key: "a", want: 50,
		},
		{
			name: "oversize insert after fills",
			max:  100,
			ops: func(c *resultCache) {
				c.Put("a", body(40), "a1")
				c.Put("b", body(40), "b1")
				c.Put("c", body(400), "c1")
			},
			key: "c", want: 400,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newResultCache(tc.max)
			tc.ops(c)
			got, _, ok := c.Get(tc.key)
			if !ok {
				t.Fatalf("newest entry %q did not survive its own Put", tc.key)
			}
			if len(got) != tc.want {
				t.Fatalf("newest entry %q = %d bytes, want %d", tc.key, len(got), tc.want)
			}
			// The invariant never licenses a leak: entries and bytes must be
			// internally consistent after the churn.
			st := c.Stats()
			if st.Entries < 1 || st.Bytes < int64(tc.want) {
				t.Fatalf("stats inconsistent after churn: %+v", st)
			}
		})
	}
}

// TestCacheReplace: re-putting a key replaces the body and reuses the slot.
func TestCacheReplace(t *testing.T) {
	c := newResultCache(100)
	c.Put("k", []byte("old-old-old"), "a1")
	c.Put("k", []byte("new"), "a2")
	got, addr, ok := c.Get("k")
	if !ok || string(got) != "new" || addr != "a2" {
		t.Fatalf("replace failed: %q %q %v", got, addr, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 3 {
		t.Fatalf("stats after replace = %+v", st)
	}
}

// TestCacheKeyVariants: the server derives identical keys for
// canonicalization variants and distinct keys for different seeds,
// versions, and replicate overrides.
func TestCacheKeyVariants(t *testing.T) {
	s := mustNew(t, Config{Version: "v-test"})
	defer s.Close()

	key := func(body string, seed uint64) string {
		spec, err := resolveSpec(&Request{Spec: []byte(body), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		k, err := s.cacheKey(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(tinySpec, 1)
	if v := key(tinySpecVariant, 1); v != base {
		t.Fatalf("variant keyed %s, want %s", v, base)
	}
	if v := key(tinySpec, 2); v == base {
		t.Fatal("seed is not part of the key")
	}

	spec, err := resolveSpec(&Request{Spec: []byte(tinySpec), Replicates: 9})
	if err != nil {
		t.Fatal(err)
	}
	k, err := s.cacheKey(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k == base {
		t.Fatal("replicates override is not part of the key")
	}

	other := mustNew(t, Config{Version: "v-other"})
	defer other.Close()
	spec2, err := resolveSpec(&Request{Spec: []byte(tinySpec)})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := other.cacheKey(spec2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == base {
		t.Fatal("code version is not part of the key")
	}
	if fmt.Sprintf("%.7s", base) != "sha256:" {
		t.Fatalf("malformed key %q", base)
	}
}
