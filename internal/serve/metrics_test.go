package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lotuseater/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// scrape fetches /metrics and validates the exposition strictly.
func scrape(t *testing.T, base string) (http.Header, []byte, map[string]string) {
	t.Helper()
	code, hdr, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", code, body)
	}
	fams, err := obs.CheckText(body)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	return hdr, body, fams
}

// TestMetricsGoldenScrape pins the first scrape of a fresh, fixed-config
// server byte for byte against testdata/metrics.golden. Every counter is
// zero and every gauge derives from the config, so the whole exposition —
// series set, ordering, labels, bucket layout — is deterministic; any
// drift (renamed series, reordered registration, changed buckets) fails
// here first. Run with -update to accept intended changes.
func TestMetricsGoldenScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "v-test", CacheBytes: 1 << 20, QueueDepth: 8})
	hdr, body, _ := scrape(t, ts.URL)
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("exposition drifted from golden (run with -update if intended):\ngot:\n%s\nwant:\n%s", body, want)
	}

	// Two servers built the same way scrape identically — the registration
	// path itself is deterministic, not just this process's first render.
	_, ts2 := newTestServer(t, Config{Version: "v-test", CacheBytes: 1 << 20, QueueDepth: 8})
	_, body2, _ := scrape(t, ts2.URL)
	if !bytes.Equal(body, body2) {
		t.Fatal("two identically configured servers scraped differently")
	}
}

// TestMetricsTrafficCounters drives a fixed workload and asserts every
// deterministic-value series: cache hits/misses, job outcomes, replicate
// counts, and per-route request totals. (Durations vary run to run; the
// golden test pins their layout, this one their counts.)
func TestMetricsTrafficCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "v-test"})

	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 17}`, tinySpec))
	waitDone(t, ts.URL, resp.Key)
	if code, _, _ := getBody(t, ts.URL+"/results/"+resp.Key); code != http.StatusOK {
		t.Fatal("result fetch failed")
	}
	again := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 17}`, tinySpec))
	if !again.Cached {
		t.Fatal("second submit was not a cache hit")
	}

	_, body, fams := scrape(t, ts.URL)
	for _, name := range []string{
		"lotus_cache_hits_total", "lotus_cache_misses_total", "lotus_jobs_total",
		"lotus_job_duration_seconds", "lotus_job_replicates_total",
		"lotus_http_requests_total", "lotus_http_request_duration_seconds",
		"lotus_queue_depth", "lotus_store_entries", "lotus_cluster_workers",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("series %s missing from scrape", name)
		}
	}

	wantLines := map[string]string{
		// The result fetch hit, and the second submit hit; the first submit
		// and the first /results lookup missed... except /results/{key} is
		// served after the run cached it, so: submit-1 misses, submit-2 hits,
		// result fetch hits.
		`lotus_cache_hits_total`:                            "2",
		`lotus_cache_misses_total`:                          "1",
		`lotus_jobs_total{status="done"}`:                   "1",
		`lotus_jobs_total{status="failed"}`:                 "0",
		`lotus_job_replicates_total`:                        "2", // tinySpec runs 2 replicates
		`lotus_http_requests_total{route="/experiments"}`:   "2",
		`lotus_http_requests_total{route="/results/{key}"}`: "1",
		`lotus_http_requests_total{route="other"}`:          "0",
	}
	for line, want := range wantLines {
		got, ok := sampleValue(body, line)
		if !ok {
			t.Errorf("sample %s missing", line)
			continue
		}
		if got != want {
			t.Errorf("%s = %s, want %s", line, got, want)
		}
	}

	// The jobs poll count varies with scheduling; it must at least cover the
	// waitDone polls that returned.
	if v, ok := sampleValue(body, `lotus_http_requests_total{route="/jobs/{key}"}`); !ok || v == "0" {
		t.Errorf("/jobs/{key} requests = %q, want > 0", v)
	}
}

// sampleValue extracts one sample's value from an exposition body.
func sampleValue(body []byte, prefix string) (string, bool) {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			return rest, true
		}
	}
	return "", false
}

// TestAccessLog: with -log-format=json every request emits exactly one
// line with the fixed schema — route, status, bytes, duration, and cache
// outcome where the route has one.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Version: "v-test", LogFormat: "json", LogWriter: &buf})

	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 19}`, tinySpec))
	waitDone(t, ts.URL, resp.Key)
	if code, _, _ := getBody(t, ts.URL+"/results/"+resp.Key); code != http.StatusOK {
		t.Fatal("result fetch failed")
	}

	var recs []accessRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if len(recs) < 3 {
		t.Fatalf("only %d log lines for submit+polls+result", len(recs))
	}

	var sawSubmit, sawResult bool
	for _, rec := range recs {
		if rec.Time == "" || rec.Method == "" || rec.Route == "" || rec.Status == 0 || rec.Dur == "" {
			t.Fatalf("log record missing required fields: %+v", rec)
		}
		if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
			t.Fatalf("unparseable timestamp %q", rec.Time)
		}
		switch rec.Route {
		case "/experiments":
			sawSubmit = true
			if rec.Key != resp.Key || rec.Cache != cacheMiss {
				t.Fatalf("submit record: %+v", rec)
			}
		case "/results/{key}":
			sawResult = true
			if rec.Key != resp.Key || rec.Cache != cacheHit || rec.Bytes == 0 {
				t.Fatalf("result record: %+v", rec)
			}
		}
	}
	if !sawSubmit || !sawResult {
		t.Fatalf("submit/result routes missing from log (submit=%v result=%v)", sawSubmit, sawResult)
	}
}

// syncBuffer is a bytes.Buffer safe for the logger's concurrent writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestResultConditionalRequest: GET /results/{key} honors If-None-Match —
// strong, weak, lists, and the wildcard all answer 304 with no body;
// non-matching tags serve the full artifact.
func TestResultConditionalRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "v-test"})
	resp := submit(t, ts.URL, fmt.Sprintf(`{"spec": %s, "seed": 23}`, tinySpec))
	waitDone(t, ts.URL, resp.Key)
	code, hdr, body := getBody(t, ts.URL+"/results/"+resp.Key)
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("priming fetch: status %d, %d bytes", code, len(body))
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on result")
	}

	fetch := func(inm string) (int, http.Header, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/results/"+resp.Key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r.StatusCode, r.Header, buf.Bytes()
	}

	for name, inm := range map[string]string{
		"strong match": etag,
		"weak match":   "W/" + etag,
		"wildcard":     "*",
		"in a list":    `"sha256:beef", ` + etag,
	} {
		code, hdr, body := fetch(inm)
		if code != http.StatusNotModified {
			t.Errorf("%s: status %d, want 304", name, code)
		}
		if len(body) != 0 {
			t.Errorf("%s: 304 carried %d body bytes", name, len(body))
		}
		if hdr.Get("ETag") != etag {
			t.Errorf("%s: 304 ETag %q, want %q", name, hdr.Get("ETag"), etag)
		}
	}

	for name, inm := range map[string]string{
		"no header":     "",
		"stale tag":     `"sha256:beef"`,
		"unquoted junk": "junk",
	} {
		code, _, gotBody := fetch(inm)
		if code != http.StatusOK {
			t.Errorf("%s: status %d, want 200", name, code)
		}
		if !bytes.Equal(gotBody, body) {
			t.Errorf("%s: body differs from unconditional fetch", name)
		}
	}
}
