package serve

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// accessLog emits one JSON object per finished request. Lines are written
// whole under a mutex so concurrent handlers never interleave mid-record,
// and fields marshal in struct order — fixed schema, greppable stream.
type accessLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// accessRecord is the wire schema of one log line. Optional fields are
// omitted rather than emitted empty so the common line stays short.
type accessRecord struct {
	Time   string `json:"time"`
	Method string `json:"method"`
	Route  string `json:"route"`
	Path   string `json:"path,omitempty"`
	Key    string `json:"key,omitempty"`
	Status int    `json:"status"`
	Bytes  int64  `json:"bytes"`
	Dur    string `json:"dur"`
	Cache  string `json:"cache,omitempty"`
}

// newAccessLog builds a logger for the given format. Only "json" produces a
// logger; "" and "off" return nil (logging disabled). The format is
// validated at flag-parse time, so anything else lands here only through a
// programmer error and is treated as off.
func newAccessLog(format string, w io.Writer) *accessLog {
	if format != "json" {
		return nil
	}
	if w == nil {
		w = os.Stderr
	}
	return &accessLog{w: w, now: time.Now}
}

func (l *accessLog) record(method, route, path string, info *reqInfo, status int, bytes int64, d time.Duration) {
	rec := accessRecord{
		Time:   l.now().UTC().Format(time.RFC3339Nano),
		Method: method,
		Route:  route,
		Status: status,
		Bytes:  bytes,
		Dur:    d.String(),
	}
	// The route label already identifies templated paths; include the raw
	// path only when it carries information the route does not.
	if path != rec.Route {
		rec.Path = path
	}
	if info != nil {
		rec.Key = info.key
		rec.Cache = info.cache
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // schema is all plain fields; unreachable
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}

// ValidLogFormat reports whether s is an accepted -log-format value.
func ValidLogFormat(s string) bool {
	switch s {
	case "", "off", "json":
		return true
	}
	return false
}
