package gossip

import (
	"lotuseater/internal/defense"
)

// attackerServes decides whether attacker node att serves peer inside a
// protocol exchange this round: a custom adversary's OnExchange hook rules
// when one is installed; the default Config-derived strategy serves exactly
// the round's satiation targets (which also honors WithTargeter overrides,
// since targetsByRound comes from the effective targeter).
//
//lotus:allocfree
func (e *Engine) attackerServes(att, peer int) bool {
	if e.customAdv {
		return e.adv.OnExchange(e.round, att, peer)
	}
	return e.targetsByRound[e.round].Has(peer)
}

// execBalanced performs one balanced exchange between the planned pair.
//
// Honest semantics: each side offers what the other lacks; the exchange size
// is the one-for-one minimum k of the two need counts, plus up to
// BalanceSlack extra from the side with more to give (Figure 3's obedient
// variant), provided k >= 1. Updates closest to expiry transfer first.
//
// A trade attacker gives a satiated target every update it holds that the
// target lacks — "more updates than a normal node would" — and keeps the
// target's one-for-one reciprocation as inventory. It gives isolated nodes
// nothing.
//
//lotus:allocfree
func (e *Engine) execBalanced(p pairing) {
	i, j := p.initiator, p.partner
	if e.evicted[i] || e.evicted[j] || e.departed[i] || e.departed[j] {
		return
	}
	ai, aj := e.isAttacker[i], e.isAttacker[j]
	switch {
	case ai && aj:
		return // attacker nodes have nothing to gain from each other
	case ai || aj:
		if !e.advTrades {
			return // crash and ideal attackers never trade
		}
		att, peer := i, j
		if aj {
			att, peer = j, i
		}
		e.attackerBalanced(att, peer)
	default:
		e.honestBalanced(i, j)
	}
}

//lotus:allocfree
func (e *Engine) honestBalanced(i, j int) {
	needI := e.needsFrom(i, j, 0)
	needJ := e.needsFrom(j, i, 1)
	k := min(len(needI), len(needJ))
	if k == 0 {
		e.maybeAltruistic(i, j, needI, needJ)
		return
	}
	giveToI := min(len(needI), k+e.cfg.BalanceSlack)
	giveToJ := min(len(needJ), k+e.cfg.BalanceSlack)
	e.deliver(j, i, needI[:giveToI], giveToJ, false)
	e.deliver(i, j, needJ[:giveToJ], giveToI, false)
}

// maybeAltruistic implements the paper's parameter a in the gossip
// substrate: when a one-for-one exchange is impossible (k = 0) but one side
// still needs updates, the other side gives up to AltruisticGive updates for
// nothing with probability Altruism.
//
//lotus:allocfree
func (e *Engine) maybeAltruistic(i, j int, needI, needJ []int) {
	if e.maxAltruism <= 0 || e.cfg.AltruisticGive <= 0 {
		return
	}
	// The giver's altruism decides each gift: j gives to i in the first
	// branch, i gives to j in the second. altruismOf is cfg.Altruism for
	// every node without per-class overrides, so the homogeneous draw
	// sequence is unchanged.
	rng := e.rng.ChildN("altruism", e.round*e.cfg.Nodes+i)
	if len(needI) > 0 && len(needJ) == 0 && rng.Bool(e.altruismOf(j)) {
		e.deliver(j, i, needI[:min(len(needI), e.cfg.AltruisticGive)], 0, false)
	}
	if len(needJ) > 0 && len(needI) == 0 && rng.Bool(e.altruismOf(i)) {
		e.deliver(i, j, needJ[:min(len(needJ), e.cfg.AltruisticGive)], 0, false)
	}
}

// altruismOf returns node v's altruism: the per-class override when the
// population model installed one, the scalar config otherwise.
//
//lotus:allocfree
func (e *Engine) altruismOf(v int) float64 {
	if e.nodeAltruism != nil {
		return e.nodeAltruism[v]
	}
	return e.cfg.Altruism
}

// attackerBalanced is a trade attacker's balanced exchange. The attacker
// stays within the protocol: it can only move updates it actually holds,
// but it violates the one-for-one rule upward, giving a satiated target
// every update it holds that the target lacks. The target reciprocates the
// ordinary one-for-one count, which the attacker keeps (it needs inventory
// to keep satiating). Isolated nodes get nothing.
//
//lotus:allocfree
func (e *Engine) attackerBalanced(att, peer int) {
	if !e.attackerServes(att, peer) {
		return // isolated nodes get nothing from the attacker
	}
	needPeer := e.needsFrom(peer, att, 0)
	if len(needPeer) == 0 {
		return // nothing to give this target
	}
	needAtt := e.needsFrom(att, peer, 1)
	recip := min(len(needAtt), len(needPeer))
	e.deliver(att, peer, needPeer, recip, true)
	e.give(needAtt[:recip], att)
	e.usefulSent.Add(int64(recip))
}

// deliver transfers the updates at the given live indices from node `from`
// to node `to`. reciprocated is how many units the receiver returns in the
// same interaction (junk included — nonproductive work is still payment);
// the difference offered − reciprocated is the *excess* service that the
// receiver-side defenses act on. One-for-one exchanges have zero excess no
// matter their size, so obedient receivers never report or throttle honest
// trades; lotus-eater gifts are almost pure excess. attacker marks the
// upload as attacker bandwidth.
//
//lotus:allocfree
func (e *Engine) deliver(from, to int, indices []int, reciprocated int, attacker bool) {
	if len(indices) == 0 {
		return
	}
	offered := len(indices)
	excess := offered - reciprocated
	if excess < 0 {
		excess = 0
	}
	obedient := e.roles[to] == RoleObedient

	if obedient && excess > 0 && e.board != nil && e.board.Excessive(excess) {
		e.fileReport(from, to, indices)
	}
	granted := offered
	if obedient && excess > 0 && e.def != nil {
		allowed := e.def.Admit(e.round, from, to, excess)
		granted = offered - (excess - allowed)
	}
	got := e.give(indices[:granted], to)
	if attacker {
		e.attackerSent.Add(int64(got))
	} else {
		e.usefulSent.Add(int64(got))
	}
}

func (e *Engine) fileReport(from, to int, indices []int) {
	receipt, err := e.keyring.SignReceipt(e.round, from, to, e.updateKeys(indices))
	if err != nil {
		return // out-of-range ids cannot occur for planned pairs
	}
	// Filing errors mean the evidence did not hold up; the board already
	// rejected it, nothing further to do.
	_ = e.board.File(e.round, defense.Report{
		Reporter: to,
		Accused:  from,
		Evidence: receipt,
	})
}

// execPush performs one optimistic push. The initiator offers recently
// released updates it holds; the responder takes up to PushSize of those it
// lacks and returns an equal count drawn from the old, soon-to-expire
// updates the initiator is missing, padded with junk when it has none.
//
//lotus:allocfree
func (e *Engine) execPush(p pairing) {
	i, j := p.initiator, p.partner
	if e.evicted[i] || e.evicted[j] || e.departed[i] || e.departed[j] {
		return
	}
	ai, aj := e.isAttacker[i], e.isAttacker[j]
	switch {
	case ai && aj:
		return
	case ai:
		if !e.advTrades {
			return
		}
		e.attackerPushInit(i, j)
	case aj:
		if !e.advTrades {
			return
		}
		e.attackerPushRespond(i, j)
	default:
		e.honestPush(i, j)
	}
}

// recentOffer lists live indices of recently released updates that src
// holds and `to` lacks. slot selects the pooled output buffer (see
// needsFrom).
//
//lotus:allocfree
func (e *Engine) recentOffer(to, src int, slot int) []int {
	cutoff := e.round - e.cfg.RecentWindow
	out := e.takeNeeds(slot)
	for idx, u := range e.live {
		if u.release > cutoff && u.deadline >= e.round && !u.holders[to] && u.holders[src] {
			out = append(out, idx)
		}
	}
	e.storeNeeds(slot, out)
	return out
}

// oldNeeds lists live indices of old updates `who` lacks that src can
// provide. slot selects the pooled output buffer (see needsFrom).
//
//lotus:allocfree
func (e *Engine) oldNeeds(who, src int, slot int) []int {
	cutoff := e.round - e.cfg.RecentWindow
	out := e.takeNeeds(slot)
	for idx, u := range e.live {
		if u.release <= cutoff && u.deadline >= e.round && !u.holders[who] && u.holders[src] {
			out = append(out, idx)
		}
	}
	e.storeNeeds(slot, out)
	return out
}

//lotus:allocfree
func (e *Engine) honestPush(i, j int) {
	wants := e.recentOffer(j, i, 0)
	k := min(len(wants), e.cfg.PushSize)
	if k == 0 {
		return
	}
	// Responder takes k recent updates...
	e.deliver(i, j, wants[:k], k, false)
	// ...and returns k units: old updates the initiator needs when it has
	// them, junk otherwise.
	back := e.oldNeeds(i, j, 1)
	r := min(len(back), k)
	e.deliver(j, i, back[:r], k, false)
	e.junkSent.Add(int64(k - r))
}

// attackerPushInit is a trade attacker initiating a push: it offers the
// recent updates it holds to a satiated target; the target takes up to
// PushSize and reciprocates per protocol, growing the attacker's inventory.
//
//lotus:allocfree
func (e *Engine) attackerPushInit(att, peer int) {
	if !e.attackerServes(att, peer) {
		return
	}
	wants := e.recentOffer(peer, att, 0)
	k := min(len(wants), e.cfg.PushSize)
	if k == 0 {
		return
	}
	e.deliver(att, peer, wants[:k], k, true)
	back := e.oldNeeds(att, peer, 1)
	r := min(len(back), k)
	e.give(back[:r], att)
	e.usefulSent.Add(int64(r))
	e.junkSent.Add(int64(k - r))
}

// attackerPushRespond is a trade attacker answering an honest push: it takes
// the offered recent updates it lacks (inventory for later satiation), then
// returns every old update a satiated target needs — excessive service — or
// pure junk to an isolated initiator.
//
//lotus:allocfree
func (e *Engine) attackerPushRespond(i, att int) {
	fresh := e.recentOffer(att, i, 0)
	k := min(len(fresh), e.cfg.PushSize)
	e.give(fresh[:k], att)

	if e.attackerServes(att, i) {
		back := e.oldNeeds(i, att, 1)
		e.deliver(att, i, back, k, true)
		if k > len(back) {
			e.junkSent.Add(int64(k - len(back)))
		}
		return
	}
	e.junkSent.Add(int64(k))
}
