package gossip

import (
	"fmt"
	"math"
	"strings"
)

// GroupStats summarizes delivery for one population group.
type GroupStats struct {
	// Nodes is the number of nodes that accumulated any measured updates in
	// this group.
	Nodes int
	// MeanDelivery is the average, over nodes in the group, of the fraction
	// of measured updates received before expiry.
	MeanDelivery float64
	// MinDelivery is the worst node's fraction.
	MinDelivery float64
	// UsableFraction is the fraction of nodes in the group whose delivery
	// meets the usability threshold.
	UsableFraction float64
}

// Bandwidth tallies upload volume in update-units.
type Bandwidth struct {
	// UsefulSent counts real updates uploaded by honest and obedient nodes.
	UsefulSent int64
	// JunkSent counts junk payloads uploaded (optimistic-push padding).
	JunkSent int64
	// AttackerSent counts updates uploaded by attacker nodes (the cost of
	// mounting the attack; the paper notes the trade attack "does require
	// enough bandwidth at each attacking node to satiate multiple nodes").
	AttackerSent int64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Cfg echoes the configuration that produced the result.
	Cfg Config
	// MeasuredUpdates is how many updates counted toward statistics.
	MeasuredUpdates int
	// Isolated covers honest nodes outside the satiation target set — the
	// population the paper's figures plot.
	Isolated GroupStats
	// Satiated covers honest nodes inside the satiation target set.
	Satiated GroupStats
	// AllHonest covers every non-attacker node.
	AllHonest GroupStats
	// PerRoundHonest[r] is the fraction of round-r measured updates that
	// the average honest node received in time; -1 for unmeasured rounds.
	// Used by the rotating-attack experiment to show intermittent outages.
	PerRoundHonest []float64
	// PerRoundIsolated[r] is the same restricted to nodes isolated at
	// round r (per the targeter); -1 when unmeasured or empty.
	PerRoundIsolated []float64
	// NodeRoundDelivery[v][r], present only when Config.TrackPerNode is
	// set, is node v's delivered fraction of the updates released in round
	// r (-1 where unmeasured, and for attacker nodes).
	NodeRoundDelivery [][]float64
	// Evictions is how many nodes the reporting defense removed.
	Evictions int
	// Bandwidth tallies upload volumes.
	Bandwidth Bandwidth
}

// Usable reports whether the isolated group's mean delivery meets the
// usability threshold (the paper's ">93% of updates" criterion).
func (r Result) Usable() bool {
	return r.Isolated.MeanDelivery >= r.Cfg.UsableThreshold
}

// String renders a one-look summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gossip: %d nodes, attack=%s fraction=%.2f satiate=%.2f\n",
		r.Cfg.Nodes, r.Cfg.Attack, r.Cfg.AttackerFraction, r.Cfg.SatiateFraction)
	fmt.Fprintf(&b, "  measured updates: %d\n", r.MeasuredUpdates)
	fmt.Fprintf(&b, "  isolated: mean=%.4f min=%.4f usable=%.2f (n=%d)\n",
		r.Isolated.MeanDelivery, r.Isolated.MinDelivery, r.Isolated.UsableFraction, r.Isolated.Nodes)
	fmt.Fprintf(&b, "  satiated: mean=%.4f (n=%d)\n", r.Satiated.MeanDelivery, r.Satiated.Nodes)
	fmt.Fprintf(&b, "  all honest: mean=%.4f (n=%d)\n", r.AllHonest.MeanDelivery, r.AllHonest.Nodes)
	if r.Evictions > 0 {
		fmt.Fprintf(&b, "  evictions: %d\n", r.Evictions)
	}
	fmt.Fprintf(&b, "  bandwidth: useful=%d junk=%d attacker=%d",
		r.Bandwidth.UsefulSent, r.Bandwidth.JunkSent, r.Bandwidth.AttackerSent)
	return b.String()
}

// groupStats derives GroupStats from per-node delivered/total tallies.
func groupStats(delivered, total []int, threshold float64) GroupStats {
	var (
		nodes  int
		sum    float64
		minV   = math.Inf(1)
		usable int
	)
	for i := range delivered {
		if total[i] == 0 {
			continue
		}
		nodes++
		frac := float64(delivered[i]) / float64(total[i])
		sum += frac
		if frac < minV {
			minV = frac
		}
		if frac >= threshold {
			usable++
		}
	}
	if nodes == 0 {
		return GroupStats{}
	}
	return GroupStats{
		Nodes:          nodes,
		MeanDelivery:   sum / float64(nodes),
		MinDelivery:    minV,
		UsableFraction: float64(usable) / float64(nodes),
	}
}
