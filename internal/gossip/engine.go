package gossip

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lotuseater/internal/attack"
	"lotuseater/internal/defense"
	"lotuseater/internal/population"
	"lotuseater/internal/sign"
	"lotuseater/internal/sim"
	"lotuseater/internal/simrng"
)

// Engine runs one BAR Gossip simulation. Create it with New and drive it
// with Run (whole horizon) or Step (one round). An Engine is not safe for
// concurrent use; run one Engine per goroutine (see internal/sweep).
type Engine struct {
	cfg      Config
	rng      *simrng.Source
	pseed    sign.PartnerSeed
	targeter attack.Targeter

	// adv drives attacker placement, targeting, and in-protocol behavior.
	// The default is an attack.Strategy built from the Config; WithAdversary
	// installs a custom one, whose OnExchange hook then decides attacker
	// exchanges (customAdv). advTrades and advInstant cache the adversary's
	// capability probes for the hot path.
	adv        sim.Adversary
	customAdv  bool
	advTrades  bool
	advInstant bool

	keyring *sign.Keyring
	board   *defense.Board
	def     sim.Defense

	roles      []Role
	attackers  []int
	isAttacker []bool
	evicted    []bool

	// Population model (all nil/empty without one; every gate below keeps
	// the static-population code path byte-identical). churn replays the
	// compiled lifecycle schedule; departed/presentSince track presence.
	// nodeAltruism overrides cfg.Altruism per node (maxAltruism caches the
	// short-circuit guard); copiesFor maps a drawn popularity rank to the
	// seeding fan-out for that update.
	churn         population.Cursor
	departed      []bool
	presentSince  []int
	nodeAltruism  []float64
	maxAltruism   float64
	updateWeights []float64
	copiesFor     []int

	round          int
	live           []*liveUpdate
	targetsByRound []*attack.TargetSet

	// Pooled per-round scratch: the planning permutation and pairing list
	// are reused every round, retired holder arrays are recycled into new
	// updates, and the two needs buffers back the sequential exchange
	// executor — steady-state rounds allocate O(|satiated set|) on the
	// satiation path and O(1) elsewhere, independent of Nodes.
	permBuf     []int
	pairBuf     []pairing
	initFlags   []bool
	holderPool  [][]bool
	needScratch [2][]int

	// evalParallel > 0 forces the sharded per-node planning evaluation,
	// < 0 forces the sequential loop, 0 picks by population size.
	evalParallel int

	measStart, measEnd int // inclusive release-round measurement window

	measuredUpdates  int
	delivered, total []int // per node, over all measured updates
	deliveredIso     []int // per node, over updates released while isolated
	totalIso         []int
	deliveredSat     []int
	totalSat         []int
	perRoundHonest   []float64
	perRoundIsolated []float64
	nodeRound        [][]int // [node][release round] delivered count

	usefulSent   atomic.Int64
	junkSent     atomic.Int64
	attackerSent atomic.Int64

	parallel bool
}

// Option customizes an Engine.
type Option func(*Engine)

// WithTargeter overrides the satiation targeter derived from the Config.
// Use attack.ListTargeter for targeted attacks (grid cuts, rare resources).
func WithTargeter(t attack.Targeter) Option {
	return func(e *Engine) { e.targeter = t }
}

// WithAdversary replaces the Config-derived attack.Strategy with a custom
// adversary: it places the attacker's nodes, chooses the satiation targets
// each round, and its OnExchange hook decides which partners attacker nodes
// serve in protocol exchanges.
func WithAdversary(a sim.Adversary) Option {
	return func(e *Engine) { e.adv = a; e.customAdv = true }
}

// WithDefense replaces the Config-derived rate limiter with a custom
// receiver-side defense; obedient nodes route every accepted excess delivery
// through its Admit hook.
func WithDefense(d sim.Defense) Option {
	return func(e *Engine) { e.def = d }
}

// WithParallel enables the batched concurrent exchange executor. Results
// are bit-identical to the default sequential executor (the equivalence is
// tested), but for Table 1-sized systems the sequential path is faster:
// individual exchanges are microseconds of work and share update holder
// arrays, so intra-round parallelism buys mostly cache-line contention.
// Parallelism pays off at the sweep level instead (internal/sweep runs
// whole simulations concurrently). The option remains for very large
// configurations where per-round work dominates.
func WithParallel() Option {
	return func(e *Engine) { e.parallel = true }
}

// WithSequential forces single-threaded exchange execution; it is the
// default and exists for explicit equivalence tests.
func WithSequential() Option {
	return func(e *Engine) { e.parallel = false }
}

// WithChurn installs a lifecycle schedule: each event's node leaves or
// (re)joins at the top of its round, before seeding and exchanges. The
// schedule must be sorted by round with nodes in [0, Nodes). A node's
// copies leave the network with it; an index that rejoins is a fresh node
// (empty holdings, measured only for updates released after its return).
func WithChurn(events []population.Event) Option {
	return func(e *Engine) { e.churn = population.NewCursor(events) }
}

// WithNodeAltruism overrides cfg.Altruism per node (len must be Nodes,
// values in [0,1]) — the heterogeneous-classes axis mapped onto the
// gossip substrate's one behavioral knob. Nil keeps the scalar config.
func WithNodeAltruism(a []float64) Option {
	return func(e *Engine) { e.nodeAltruism = a }
}

// WithUpdateWeights skews seeding by content popularity: each released
// update draws a rank from the weight vector (a normalized popularity
// catalog, e.g. Zipf) and is seeded to CopiesSeeded scaled by that rank's
// weight relative to uniform — popular content starts wide, niche content
// starts narrow. Nil keeps the uniform CopiesSeeded fan-out.
func WithUpdateWeights(w []float64) Option {
	return func(e *Engine) { e.updateWeights = w }
}

// evalParallelMinNodes is the population size at which the engine starts
// sharding per-node planning evaluation across the worker pool by default.
const evalParallelMinNodes = 1 << 15

// WithEvalParallel forces the round-planning evaluation — the O(Nodes)
// "does v initiate this phase?" scan — on or off the sharded sim.ParallelFor
// path. The evaluation is a pure read of round state, so results are
// bit-identical either way (the equivalence is tested); by default the
// sharded path engages for populations of evalParallelMinNodes and up,
// where the scan dominates round time.
func WithEvalParallel(on bool) Option {
	return func(e *Engine) {
		if on {
			e.evalParallel = 1
		} else {
			e.evalParallel = -1
		}
	}
}

// New builds an Engine for cfg, deterministic in (cfg, seed).
func New(cfg Config, seed uint64, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg: cfg,
		rng: simrng.New(seed),
	}
	n := cfg.Nodes
	e.pseed = sign.PartnerSeed(e.rng.Child("partner-seed").Uint64())

	// Options first: placement and targeting may come from a custom
	// adversary.
	for _, opt := range opts {
		opt(e)
	}
	if e.adv == nil {
		e.adv = &attack.Strategy{
			Kind:            cfg.Attack,
			Fraction:        cfg.AttackerFraction,
			SatiateFraction: cfg.SatiateFraction,
			RotatePeriod:    cfg.RotatePeriod,
		}
	}
	e.advTrades = sim.TradesInProtocol(e.adv)
	e.advInstant = sim.SatiatesInstantly(e.adv)

	// Population model wiring. Everything stays nil/scalar without one, so
	// the static-population engine is untouched byte for byte.
	if err := population.ValidateSchedule(e.churn.Events(), n); err != nil {
		return nil, fmt.Errorf("gossip: churn: %w", err)
	}
	e.maxAltruism = cfg.Altruism
	if e.nodeAltruism != nil {
		if len(e.nodeAltruism) != n {
			return nil, fmt.Errorf("gossip: node altruism has %d entries, want %d", len(e.nodeAltruism), n)
		}
		e.maxAltruism = 0
		for _, a := range e.nodeAltruism {
			if a < 0 || a > 1 {
				return nil, fmt.Errorf("gossip: node altruism %g outside [0,1]", a)
			}
			if a > e.maxAltruism {
				e.maxAltruism = a
			}
		}
	}
	if w := population.Normalize(e.updateWeights); w != nil {
		e.copiesFor = make([]int, len(w))
		for i, wi := range w {
			c := int(float64(cfg.CopiesSeeded)*wi*float64(len(w)) + 0.5)
			if c < 1 {
				c = 1
			}
			if c > n {
				c = n
			}
			e.copiesFor[i] = c
		}
	} else if e.updateWeights != nil {
		return nil, fmt.Errorf("gossip: update weights must be non-negative with a positive sum")
	}

	// Roles: the adversary places its nodes, then obedient nodes are chosen
	// among the rest.
	e.roles = make([]Role, n)
	for i := range e.roles {
		e.roles[i] = RoleHonest
	}
	e.isAttacker = make([]bool, n)
	e.attackers = e.adv.Place(n, e.rng)
	for _, a := range e.attackers {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("gossip: adversary placed node %d outside [0,%d)", a, n)
		}
		e.roles[a] = RoleAttacker
		e.isAttacker[a] = true
	}
	if cfg.ObedientFraction > 0 {
		honest := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if !e.isAttacker[v] {
				honest = append(honest, v)
			}
		}
		k := int(cfg.ObedientFraction*float64(len(honest)) + 0.5)
		for _, idx := range e.rng.Child("obedient").SampleInts(len(honest), k) {
			e.roles[honest[idx]] = RoleObedient
		}
	}

	e.evicted = make([]bool, n)
	e.departed = make([]bool, n)
	e.presentSince = make([]int, n)
	e.delivered = make([]int, n)
	e.total = make([]int, n)
	e.deliveredIso = make([]int, n)
	e.totalIso = make([]int, n)
	e.deliveredSat = make([]int, n)
	e.totalSat = make([]int, n)
	e.perRoundHonest = make([]float64, cfg.Rounds)
	e.perRoundIsolated = make([]float64, cfg.Rounds)
	for i := range e.perRoundHonest {
		e.perRoundHonest[i] = -1
		e.perRoundIsolated[i] = -1
	}
	e.targetsByRound = make([]*attack.TargetSet, cfg.Rounds)
	e.initFlags = make([]bool, n)
	if cfg.TrackPerNode {
		e.nodeRound = make([][]int, n)
		for v := range e.nodeRound {
			e.nodeRound[v] = make([]int, cfg.Rounds)
		}
	}

	e.measStart = cfg.Warmup
	e.measEnd = cfg.Rounds - cfg.Lifetime
	if e.measEnd < e.measStart {
		return nil, fmt.Errorf("gossip: horizon too short: no update both released after warmup (%d) and expiring before round %d", cfg.Warmup, cfg.Rounds)
	}

	// Defenses.
	if e.def == nil && cfg.RateLimitPerPeer > 0 {
		e.def = defense.NewLimit(cfg.RateLimitPerPeer)
	}
	if cfg.ReportThreshold > 0 {
		kr, err := sign.NewKeyring(n, e.rng.Child("keys"))
		if err != nil {
			return nil, fmt.Errorf("gossip: keyring: %w", err)
		}
		e.keyring = kr
		board, err := defense.NewBoard(kr, cfg.ReportThreshold, cfg.EvictAfterReports)
		if err != nil {
			return nil, fmt.Errorf("gossip: board: %w", err)
		}
		e.board = board
	}

	if e.targeter == nil {
		// The adversary's Targets hook is the targeter; attack.Strategy
		// reproduces the pre-strategy defaults (static/rotating satiation
		// for ideal and trade, attacker-only for crash and none) from the
		// same "targets" child stream.
		e.targeter = attack.TargeterFrom(e.adv)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Round returns the next round to be simulated.
func (e *Engine) Round() int { return e.round }

// Roles returns a copy of the per-node roles.
func (e *Engine) Roles() []Role {
	out := make([]Role, len(e.roles))
	copy(out, e.roles)
	return out
}

// Run simulates the full horizon and returns the result.
func (e *Engine) Run() (Result, error) {
	for e.round < e.cfg.Rounds {
		if err := e.Step(); err != nil {
			return Result{}, err
		}
	}
	return e.result(), nil
}

// Finished reports whether the horizon has been reached.
func (e *Engine) Finished() bool { return e.round >= e.cfg.Rounds }

// Snapshot returns the delivery statistics so far; its concrete type is
// Result. Together with Step and Finished it makes Engine a sim.Model.
func (e *Engine) Snapshot() (any, error) { return e.result(), nil }

// Step simulates one round: broadcast seeding, the ideal attacker's instant
// forwarding, the balanced-exchange phase, the optimistic-push phase,
// defense bookkeeping, and expiry accounting.
//
//lotus:allocfree
func (e *Engine) Step() error {
	if e.round >= e.cfg.Rounds {
		return fmt.Errorf("gossip: horizon of %d rounds exhausted", e.cfg.Rounds) //lotus:ignore allocfree cold guard, never taken in a steady-state round
	}
	// Lifecycle first: this round's departures and arrivals precede every
	// exchange, and the adversary learns of departures before its Targets
	// call below (a departed target's satiation leaves with it).
	for ev, ok := e.churn.Next(e.round); ok; ev, ok = e.churn.Next(e.round) {
		if ev.Join {
			e.joinNode(ev.Node)
		} else {
			e.leaveNode(ev.Node)
		}
	}
	targets := e.targeter.Satiated(e.round)
	if targets.Cap() != e.cfg.Nodes {
		return fmt.Errorf("gossip: targeter returned a set over %d nodes, want %d", targets.Cap(), e.cfg.Nodes) //lotus:ignore allocfree cold guard against a misbehaving custom targeter
	}
	// Target sets are immutable per epoch, so storing the pointer per round
	// costs nothing: all rounds of one epoch share one set.
	e.targetsByRound[e.round] = targets

	e.seedUpdates()
	if e.advInstant {
		e.idealDeliver()
	}

	e.runPhase("balanced", e.planBalanced(), e.execBalanced)
	if e.cfg.PushSize > 0 {
		e.runPhase("push", e.planPush(), e.execPush)
	}

	e.applyEvictions()
	e.retireExpired()
	e.round++
	return nil
}

// leaveNode removes v from the population: its copies leave the network
// with it (holder bits cleared across live updates, O(live) per event),
// it stops initiating and answering exchanges, and the adversary is told
// so a reused index cannot inherit its satiation. Leaving twice is a
// no-op, so arbitrary traces replay safely.
//
//lotus:allocfree
func (e *Engine) leaveNode(v int) {
	if e.departed[v] {
		return
	}
	e.departed[v] = true
	for _, u := range e.live {
		u.holders[v] = false
	}
	sim.NotifyDeparture(e.adv, e.round, v)
}

// joinNode puts a fresh node on index v: empty holdings (leaveNode
// already cleared them), measured only against updates released from this
// round on. Joining while present is a no-op.
//
//lotus:allocfree
func (e *Engine) joinNode(v int) {
	if !e.departed[v] {
		return
	}
	e.departed[v] = false
	e.presentSince[v] = e.round
}

// takeHolders returns a zeroed length-Nodes holder array, recycling one
// retired with a past update when available, so steady-state rounds allocate
// no per-update O(Nodes) storage.
//
//lotus:allocfree
func (e *Engine) takeHolders() []bool {
	if k := len(e.holderPool); k > 0 {
		h := e.holderPool[k-1]
		e.holderPool = e.holderPool[:k-1]
		clear(h)
		return h
	}
	return make([]bool, e.cfg.Nodes) //lotus:allocsetup pool miss — only until Lifetime updates are in flight, then every round recycles
}

// seedUpdates releases this round's updates to random nodes, per Table 1.
//
//lotus:allocfree
func (e *Engine) seedUpdates() {
	rng := e.rng.ChildN("seed", e.round)
	for k := 0; k < e.cfg.UpdatesPerRound; k++ {
		//lotus:ignore allocfree one bounded record per released update — population-independent, inside the alloc test's constant budget
		u := &liveUpdate{
			id:       UpdateID{Round: e.round, Index: k},
			release:  e.round,
			deadline: e.round + e.cfg.Lifetime - 1,
			holders:  e.takeHolders(),
			measured: e.round >= e.measStart && e.round <= e.measEnd,
		}
		// Uniform demand seeds a fixed fan-out; with a popularity catalog
		// the update first draws its rank and seeds the rank's fan-out —
		// popular content starts wide, niche content narrow.
		copies := e.cfg.CopiesSeeded
		if e.copiesFor != nil {
			copies = e.copiesFor[rng.IntN(len(e.copiesFor))]
		}
		for _, v := range rng.SampleInts(e.cfg.Nodes, copies) {
			if e.departed[v] {
				continue // the copy lands on an empty seat and is lost
			}
			u.holders[v] = true
			if e.isAttacker[v] && !e.evicted[v] {
				u.pool = true
			}
		}
		e.live = append(e.live, u)
	}
}

// idealDeliver implements the ideal lotus-eater attack: every update seeded
// to at least one attacker node this round is forwarded instantly to all
// satiated targets, outside any exchange. Iterating the sparse member list
// makes this O(|satiated set|) per update, not O(Nodes).
//
//lotus:allocfree
func (e *Engine) idealDeliver() {
	targets := e.targetsByRound[e.round]
	sender := -1
	if len(e.attackers) > 0 {
		sender = e.attackers[0]
	}
	for _, u := range e.live {
		if u.release != e.round || !u.pool {
			continue
		}
		for _, v := range targets.Members() {
			if e.isAttacker[v] || e.departed[v] || u.holders[v] {
				continue
			}
			if e.roles[v] == RoleObedient && e.def != nil {
				if e.def.Admit(e.round, sender, v, 1) == 0 {
					continue
				}
			}
			u.holders[v] = true
			e.attackerSent.Add(1)
		}
	}
}

// pairing is one planned interaction: initiator contacts partner.
type pairing struct {
	initiator int
	partner   int
}

// planBalanced decides who initiates a balanced exchange this round and
// with whom. Rational nodes initiate only when unsatiated; trade attackers
// always initiate; crash and ideal attackers never do.
//
//lotus:allocfree
func (e *Engine) planBalanced() []pairing {
	return e.plan("balanced", func(v int) bool {
		if e.isAttacker[v] {
			return e.advTrades
		}
		return e.lacksAnyLive(v, e.round)
	})
}

// planPush decides who initiates an optimistic push: rational nodes that
// are missing old, soon-to-expire updates; trade attackers always.
//
//lotus:allocfree
func (e *Engine) planPush() []pairing {
	oldCutoff := e.round - e.cfg.RecentWindow
	return e.plan("push", func(v int) bool {
		if e.isAttacker[v] {
			return e.advTrades
		}
		return e.lacksAnyLive(v, oldCutoff)
	})
}

//lotus:allocfree
func (e *Engine) plan(label string, initiates func(v int) bool) []pairing {
	n := e.cfg.Nodes
	// Evaluate "does v initiate?" for every node up front. The predicate is
	// a pure read of round state (holder bits, live deadlines, roles), so
	// for large populations the scan shards across the worker pool with
	// bit-identical results; plan order below is untouched either way.
	flags := e.initFlags
	if e.evalParallel > 0 || (e.evalParallel == 0 && n >= evalParallelMinNodes) {
		sim.ParallelFor(n, 0, func(_, start, end int) {
			for v := start; v < end; v++ {
				flags[v] = initiates(v)
			}
		})
	} else {
		for v := 0; v < n; v++ {
			flags[v] = initiates(v)
		}
	}
	order := e.rng.ChildN("order-"+label, e.round).PermInto(e.permBuf, n)
	e.permBuf = order
	pairs := e.pairBuf[:0]
	for _, v := range order {
		if e.evicted[v] || e.departed[v] || !flags[v] {
			continue
		}
		p := sign.Partner(e.pseed, label, e.round, v, e.cfg.Nodes)
		if e.evicted[p] || e.departed[p] {
			continue // the slot is wasted, like contacting a crashed node
		}
		pairs = append(pairs, pairing{initiator: v, partner: p})
	}
	e.pairBuf = pairs
	return pairs
}

// lacksAnyLive reports whether v is missing any live update released no
// later than maxRelease. Pass the current round to ask "is v unsatiated?".
//
//lotus:allocfree
func (e *Engine) lacksAnyLive(v, maxRelease int) bool {
	for _, u := range e.live {
		if u.release <= maxRelease && u.deadline >= e.round && !u.holders[v] {
			return true
		}
	}
	return false
}

// runPhase executes the planned pairings, preserving plan-order semantics
// while running node-disjoint exchanges concurrently. Two pairings conflict
// exactly when they share a node: each exchange reads and writes only its
// two parties' holder bits. Conflicting pairings run in plan order;
// node-disjoint pairings commute, so batching is exact, not approximate.
func (e *Engine) runPhase(_ string, pairs []pairing, exec func(pairing)) {
	if !e.parallel {
		for _, p := range pairs {
			exec(p)
		}
		return
	}
	remaining := pairs
	used := make([]bool, e.cfg.Nodes)
	for len(remaining) > 0 {
		clear(used)
		batch := remaining[:0:0]
		var deferred []pairing
		for _, p := range remaining {
			conflict := used[p.initiator] || used[p.partner]
			// Once a node is blocked, later pairings touching it must also
			// wait, or plan order among conflicting pairs would invert.
			used[p.initiator] = true
			used[p.partner] = true
			if conflict {
				deferred = append(deferred, p)
				continue
			}
			batch = append(batch, p)
		}
		// Execute the batch across a few worker goroutines. Individual
		// exchanges are microseconds of work, so chunking matters: one
		// goroutine per pair would cost more in scheduling than it saves.
		const pairsPerWorker = 16
		workers := len(batch) / pairsPerWorker
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
		if workers <= 1 {
			for _, p := range batch {
				exec(p)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (len(batch) + workers - 1) / workers
			for start := 0; start < len(batch); start += chunk {
				end := min(start+chunk, len(batch))
				wg.Add(1)
				go func(pairs []pairing) {
					defer wg.Done()
					for _, p := range pairs {
						exec(p)
					}
				}(batch[start:end])
			}
			wg.Wait()
		}
		remaining = deferred
	}
}

// applyEvictions makes report-board evictions effective at round end, so
// eviction timing does not depend on intra-round execution order.
//
//lotus:allocfree
func (e *Engine) applyEvictions() {
	if e.board == nil {
		return
	}
	for v := 0; v < e.cfg.Nodes; v++ {
		if !e.evicted[v] && e.board.Evicted(v) {
			e.evicted[v] = true
		}
	}
}

// retireExpired removes updates whose deadline has passed and accumulates
// delivery statistics for measured ones.
//
//lotus:allocfree
func (e *Engine) retireExpired() {
	keep := e.live[:0]
	var (
		roundDelivered, roundTotal       int
		roundIsoDelivered, roundIsoTotal int
	)
	for _, u := range e.live {
		if u.deadline > e.round {
			keep = append(keep, u)
			continue
		}
		if !u.measured {
			e.holderPool = append(e.holderPool, u.holders)
			continue
		}
		e.measuredUpdates++
		relTargets := e.targetsByRound[u.release]
		for v := 0; v < e.cfg.Nodes; v++ {
			if e.isAttacker[v] {
				continue
			}
			// Churn gates the denominator: a node counts toward an update's
			// delivery statistics only if it is still present and was
			// already present at release — nobody "misses" an update that
			// circulated while their seat was empty. All-false/zero without
			// churn, so the static path is untouched.
			if e.departed[v] || e.presentSince[v] > u.release {
				continue
			}
			got := u.holders[v]
			e.total[v]++
			if got {
				e.delivered[v]++
				if e.nodeRound != nil {
					e.nodeRound[v][u.release]++
				}
			}
			roundTotal++
			if got {
				roundDelivered++
			}
			if relTargets.Has(v) {
				e.totalSat[v]++
				if got {
					e.deliveredSat[v]++
				}
			} else {
				e.totalIso[v]++
				roundIsoTotal++
				if got {
					e.deliveredIso[v]++
					roundIsoDelivered++
				}
			}
		}
		if roundTotal > 0 {
			e.perRoundHonest[u.release] = float64(roundDelivered) / float64(roundTotal)
		}
		if roundIsoTotal > 0 {
			e.perRoundIsolated[u.release] = float64(roundIsoDelivered) / float64(roundIsoTotal)
		}
		e.holderPool = append(e.holderPool, u.holders)
	}
	// Drop references so retired updates can be collected.
	for i := len(keep); i < len(e.live); i++ {
		e.live[i] = nil
	}
	e.live = keep
}

func (e *Engine) result() Result {
	res := Result{
		Cfg:              e.cfg,
		MeasuredUpdates:  e.measuredUpdates,
		Isolated:         groupStats(e.deliveredIso, e.totalIso, e.cfg.UsableThreshold),
		Satiated:         groupStats(e.deliveredSat, e.totalSat, e.cfg.UsableThreshold),
		AllHonest:        groupStats(e.delivered, e.total, e.cfg.UsableThreshold),
		PerRoundHonest:   append([]float64(nil), e.perRoundHonest...),
		PerRoundIsolated: append([]float64(nil), e.perRoundIsolated...),
		Bandwidth: Bandwidth{
			UsefulSent:   e.usefulSent.Load(),
			JunkSent:     e.junkSent.Load(),
			AttackerSent: e.attackerSent.Load(),
		},
	}
	if e.board != nil {
		res.Evictions = e.board.EvictedCount()
	}
	if e.nodeRound != nil {
		res.NodeRoundDelivery = make([][]float64, e.cfg.Nodes)
		for v := range res.NodeRoundDelivery {
			fractions := make([]float64, e.cfg.Rounds)
			for r := range fractions {
				if e.isAttacker[v] || r < e.measStart || r > e.measEnd {
					fractions[r] = -1
					continue
				}
				fractions[r] = float64(e.nodeRound[v][r]) / float64(e.cfg.UpdatesPerRound)
			}
			res.NodeRoundDelivery[v] = fractions
		}
	}
	return res
}
