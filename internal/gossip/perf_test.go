package gossip

import (
	"reflect"
	"testing"

	"lotuseater/internal/attack"
)

// bigPathConfig is the shape the gossip-1m scenario uses, shrunk to a
// test-sized population: one update per round so the steady state is easy
// to reason about, ideal satiation of 30% of the system.
func bigPathConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = n
	cfg.UpdatesPerRound = 1
	cfg.Lifetime = 8
	cfg.CopiesSeeded = 32
	cfg.Warmup = 0
	cfg.Rounds = 1 << 20 // effectively unbounded for the measured window
	cfg.Attack = attack.Ideal
	cfg.AttackerFraction = 0.02
	cfg.SatiateFraction = 0.30
	return cfg
}

// TestStepAllocsIndependentOfPopulation is the sparse-satiation acceptance
// test: once the engine's pools are primed, a steady-state round's
// allocations must not grow with the population — the satiation and
// planning paths are O(|satiated set|) updates into pooled storage, and
// everything O(Nodes) (holder arrays, permutations, pairing lists, needs
// buffers) is recycled. Before this PR every round materialized a dense
// []bool per targeter call and a fresh permutation, pairing list, and
// holder array — all O(Nodes) heap traffic.
func TestStepAllocsIndependentOfPopulation(t *testing.T) {
	measure := func(n int) float64 {
		e, err := New(bigPathConfig(n), 11, WithEvalParallel(false))
		if err != nil {
			t.Fatal(err)
		}
		// Prime the pools: one full lifetime of updates plus slack.
		for i := 0; i < e.cfg.Lifetime+2; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(1024)
	big := measure(8192)
	// The absolute bound is loose (per-round RNG children and the update
	// record allocate a handful of objects); the point is the comparison:
	// an O(Nodes) allocation anywhere would blow it up immediately at the
	// larger population.
	if small > 96 {
		t.Fatalf("steady-state Step allocates %.0f objects at n=1024, want a small constant", small)
	}
	if big > small+16 {
		t.Fatalf("Step allocations grew with population: %.0f at n=1024 vs %.0f at n=8192", small, big)
	}
}

// TestEvalParallelBitIdentical extends the workers-parity guarantee to the
// in-replicate sharded planning path: an engine with the evaluation scan
// forced onto sim.ParallelFor must produce exactly the result of the
// sequential scan, for every attack kind.
func TestEvalParallelBitIdentical(t *testing.T) {
	for _, kind := range []attack.Kind{attack.None, attack.Crash, attack.Ideal, attack.Trade} {
		cfg := DefaultConfig()
		cfg.Nodes = 300
		cfg.Rounds = 30
		cfg.Warmup = 5
		cfg.Attack = kind
		cfg.AttackerFraction = 0.15
		cfg.RotatePeriod = 7 // cover epoch re-draws mid-run
		run := func(parallel bool) Result {
			e, err := New(cfg, 23, WithEvalParallel(parallel))
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		seq, par := run(false), run(true)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%v: sharded evaluation diverged from sequential:\n%+v\nvs\n%+v", kind, seq, par)
		}
	}
}
