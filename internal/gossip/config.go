// Package gossip implements a BAR Gossip simulator, the evaluation
// substrate of Section 2 of the paper.
//
// A broadcaster releases a batch of updates each round and seeds each update
// to a few random nodes. Nodes then gossip through two sub-protocols, each
// initiated once per round with a verifiable pseudorandomly chosen partner:
//
//   - Balanced exchange: partners swap as many updates as possible on a
//     strict one-for-one basis (optionally one extra — the obedient
//     "slightly unbalanced" variant of Figure 3).
//   - Optimistic push: a node missing old, soon-to-expire updates offers
//     recently released updates it holds; the partner takes a bounded number
//     of them and returns old updates the initiator needs, padding with junk
//     when it has none.
//
// Updates are time-sensitive: an update released in round r is useful only
// until round r+Lifetime-1. The stream is usable for a node only if it
// receives more than UsableThreshold of the updates in time.
//
// The protocol is satiation-compatible: a node holding every live update
// gains nothing from a balanced exchange (the one-for-one count is zero) and
// never initiates an optimistic push, so it provides no service — exactly
// the property the lotus-eater attack exploits.
package gossip

import (
	"fmt"

	"lotuseater/internal/attack"
)

// Config holds every parameter of a simulation run. The zero value is not
// usable; start from DefaultConfig (Table 1 of the paper).
type Config struct {
	// Nodes is the total number of nodes, attacker-controlled included.
	Nodes int
	// UpdatesPerRound is how many updates the broadcaster releases per round.
	UpdatesPerRound int
	// Lifetime is the number of rounds an update stays useful, counting its
	// release round.
	Lifetime int
	// CopiesSeeded is how many random nodes receive each update directly
	// from the broadcaster.
	CopiesSeeded int
	// PushSize is the maximum number of recent updates transferred in one
	// optimistic push (2 in Figure 1, 10 in Figure 2, 4 in Figure 3).
	PushSize int
	// BalanceSlack is how many extra updates a node is willing to give
	// beyond what it receives in a balanced exchange, provided it receives
	// at least one (0 = strictly balanced; 1 = the obedient variant of
	// Figure 3).
	BalanceSlack int
	// RecentWindow is how many trailing rounds count as "recently released"
	// for optimistic pushes; older live updates count as "expiring soon".
	RecentWindow int

	// Rounds is the horizon of the simulation.
	Rounds int
	// Warmup is the number of initial rounds excluded from measurement, so
	// statistics reflect steady state.
	Warmup int
	// UsableThreshold is the minimum delivered fraction for the stream to
	// be usable (0.93 in the paper).
	UsableThreshold float64

	// Attack selects the adversary behavior.
	Attack attack.Kind
	// AttackerFraction is the fraction of nodes the adversary controls.
	AttackerFraction float64
	// SatiateFraction is the fraction of the system (attacker nodes
	// included) the adversary tries to satiate (0.70 in the paper).
	SatiateFraction float64
	// RotatePeriod, when positive, re-draws the satiated set every that
	// many rounds (the "intermittently unusable" variant). Zero keeps the
	// set static.
	RotatePeriod int

	// Altruism is the probability that a satiated honest node nevertheless
	// answers a balanced exchange with up to AltruisticGive updates, asking
	// nothing in return — the parameter a of Section 3's model, transplanted
	// into the gossip substrate. Zero for all paper figures.
	Altruism float64
	// AltruisticGive caps the updates given altruistically per exchange.
	AltruisticGive int

	// ObedientFraction is the fraction of honest nodes that follow the
	// protocol even against self-interest: they enforce rate limits and
	// report excessive service (Section 4's "leveraging obedience").
	ObedientFraction float64
	// RateLimitPerPeer caps how many updates an obedient node accepts from
	// one peer per round (0 disables; Section 5's rate-limiting defense).
	RateLimitPerPeer int
	// ReportThreshold marks a single delivery of more than this many
	// updates as excessive; obedient receivers report it with the signed
	// receipt (0 disables reporting).
	ReportThreshold int
	// EvictAfterReports is how many distinct accusers evict a node.
	EvictAfterReports int

	// TrackPerNode records each node's per-release-round delivery fraction
	// in Result.NodeRoundDelivery. Off by default (sweeps do not need the
	// memory); the rotating-attack experiment turns it on.
	TrackPerNode bool
}

// DefaultConfig returns Table 1 of the paper plus the measurement settings
// used throughout this reproduction.
func DefaultConfig() Config {
	return Config{
		Nodes:             250,
		UpdatesPerRound:   10,
		Lifetime:          10,
		CopiesSeeded:      12,
		PushSize:          2,
		BalanceSlack:      0,
		RecentWindow:      2,
		Rounds:            60,
		Warmup:            15,
		UsableThreshold:   0.93,
		Attack:            attack.None,
		AttackerFraction:  0,
		SatiateFraction:   0.70,
		AltruisticGive:    2,
		EvictAfterReports: 3,
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("gossip: need at least 2 nodes, got %d", c.Nodes)
	case c.UpdatesPerRound < 1:
		return fmt.Errorf("gossip: UpdatesPerRound must be positive, got %d", c.UpdatesPerRound)
	case c.Lifetime < 1:
		return fmt.Errorf("gossip: Lifetime must be positive, got %d", c.Lifetime)
	case c.CopiesSeeded < 1 || c.CopiesSeeded > c.Nodes:
		return fmt.Errorf("gossip: CopiesSeeded must be in [1,%d], got %d", c.Nodes, c.CopiesSeeded)
	case c.PushSize < 0:
		return fmt.Errorf("gossip: PushSize must be non-negative, got %d", c.PushSize)
	case c.BalanceSlack < 0:
		return fmt.Errorf("gossip: BalanceSlack must be non-negative, got %d", c.BalanceSlack)
	case c.RecentWindow < 1 || c.RecentWindow > c.Lifetime:
		return fmt.Errorf("gossip: RecentWindow must be in [1,%d], got %d", c.Lifetime, c.RecentWindow)
	case c.Rounds < 1:
		return fmt.Errorf("gossip: Rounds must be positive, got %d", c.Rounds)
	case c.Warmup < 0 || c.Warmup >= c.Rounds:
		return fmt.Errorf("gossip: Warmup must be in [0,%d), got %d", c.Rounds, c.Warmup)
	case c.UsableThreshold < 0 || c.UsableThreshold > 1:
		return fmt.Errorf("gossip: UsableThreshold must be in [0,1], got %g", c.UsableThreshold)
	case c.Attack < attack.None || c.Attack > attack.Trade:
		return fmt.Errorf("gossip: unknown attack kind %d", c.Attack)
	case c.AttackerFraction < 0 || c.AttackerFraction > 1:
		return fmt.Errorf("gossip: AttackerFraction must be in [0,1], got %g", c.AttackerFraction)
	case c.SatiateFraction < 0 || c.SatiateFraction > 1:
		return fmt.Errorf("gossip: SatiateFraction must be in [0,1], got %g", c.SatiateFraction)
	case c.RotatePeriod < 0:
		return fmt.Errorf("gossip: RotatePeriod must be non-negative, got %d", c.RotatePeriod)
	case c.Altruism < 0 || c.Altruism > 1:
		return fmt.Errorf("gossip: Altruism must be in [0,1], got %g", c.Altruism)
	case c.AltruisticGive < 0:
		return fmt.Errorf("gossip: AltruisticGive must be non-negative, got %d", c.AltruisticGive)
	case c.ObedientFraction < 0 || c.ObedientFraction > 1:
		return fmt.Errorf("gossip: ObedientFraction must be in [0,1], got %g", c.ObedientFraction)
	case c.RateLimitPerPeer < 0:
		return fmt.Errorf("gossip: RateLimitPerPeer must be non-negative, got %d", c.RateLimitPerPeer)
	case c.ReportThreshold < 0:
		return fmt.Errorf("gossip: ReportThreshold must be non-negative, got %d", c.ReportThreshold)
	case c.EvictAfterReports < 1:
		return fmt.Errorf("gossip: EvictAfterReports must be positive, got %d", c.EvictAfterReports)
	}
	return nil
}

// Role describes how a node behaves.
type Role int

const (
	// RoleHonest nodes follow the protocol rationally: they trade when and
	// only when they stand to gain.
	RoleHonest Role = iota + 1
	// RoleObedient nodes follow the protocol even when deviating would pay:
	// they additionally enforce rate limits and report excessive service.
	RoleObedient
	// RoleAttacker nodes are controlled by the adversary; their behavior is
	// set by the attack kind.
	RoleAttacker
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleHonest:
		return "honest"
	case RoleObedient:
		return "obedient"
	case RoleAttacker:
		return "attacker"
	default:
		return fmt.Sprintf("gossip.Role(%d)", int(r))
	}
}
