package gossip

import (
	"testing"

	"lotuseater/internal/attack"
)

// BenchmarkRound measures one full simulation round at Table 1 scale — the
// inner loop of every figure sweep (sequential executor, the default).
func BenchmarkRound(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Rounds = 1 << 20 // effectively unbounded; we step manually
	cfg.Warmup = 0
	eng, err := New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundParallel measures the batched concurrent executor — an
// ablation showing why sequential is the default at this scale.
func BenchmarkRoundParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Rounds = 1 << 20
	cfg.Warmup = 0
	eng, err := New(cfg, 1, WithParallel())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundUnderTradeAttack measures the attacked round, whose
// exchanges move far more updates.
func BenchmarkRoundUnderTradeAttack(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Rounds = 1 << 20
	cfg.Warmup = 0
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.25
	eng, err := New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRun measures a whole default-horizon simulation.
func BenchmarkFullRun(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		eng, err := New(cfg, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
