package gossip

import (
	"strings"
	"testing"

	"lotuseater/internal/attack"
)

// quickConfig returns a reduced-size configuration that still exhibits the
// protocol's dynamics, for tests that run many simulations.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 100
	cfg.Rounds = 35
	cfg.Warmup = 10
	return cfg
}

func mustRun(t *testing.T, cfg Config, seed uint64, opts ...Option) Result {
	t.Helper()
	eng, err := New(cfg, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few nodes", func(c *Config) { c.Nodes = 1 }},
		{"zero updates", func(c *Config) { c.UpdatesPerRound = 0 }},
		{"zero lifetime", func(c *Config) { c.Lifetime = 0 }},
		{"zero copies", func(c *Config) { c.CopiesSeeded = 0 }},
		{"copies exceed nodes", func(c *Config) { c.CopiesSeeded = c.Nodes + 1 }},
		{"negative push", func(c *Config) { c.PushSize = -1 }},
		{"negative slack", func(c *Config) { c.BalanceSlack = -1 }},
		{"zero recent window", func(c *Config) { c.RecentWindow = 0 }},
		{"recent window exceeds lifetime", func(c *Config) { c.RecentWindow = c.Lifetime + 1 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"warmup >= rounds", func(c *Config) { c.Warmup = c.Rounds }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
		{"threshold > 1", func(c *Config) { c.UsableThreshold = 1.5 }},
		{"bad attack kind", func(c *Config) { c.Attack = attack.Kind(99) }},
		{"attacker fraction > 1", func(c *Config) { c.AttackerFraction = 1.1 }},
		{"satiate fraction < 0", func(c *Config) { c.SatiateFraction = -0.1 }},
		{"negative rotate", func(c *Config) { c.RotatePeriod = -1 }},
		{"altruism > 1", func(c *Config) { c.Altruism = 2 }},
		{"negative altruistic give", func(c *Config) { c.AltruisticGive = -1 }},
		{"obedient fraction > 1", func(c *Config) { c.ObedientFraction = 1.01 }},
		{"negative rate limit", func(c *Config) { c.RateLimitPerPeer = -1 }},
		{"negative report threshold", func(c *Config) { c.ReportThreshold = -1 }},
		{"zero evict threshold", func(c *Config) { c.EvictAfterReports = 0 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: validation passed", c.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestHorizonTooShort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 20
	cfg.Warmup = 15 // measEnd = 20-10 = 10 < 15
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("accepted horizon with empty measurement window")
	}
}

func TestTable1Defaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 250 || cfg.UpdatesPerRound != 10 || cfg.Lifetime != 10 ||
		cfg.CopiesSeeded != 12 || cfg.PushSize != 2 {
		t.Fatalf("Table 1 drift: %+v", cfg)
	}
	if cfg.UsableThreshold != 0.93 {
		t.Fatalf("usability threshold %g, want 0.93", cfg.UsableThreshold)
	}
}

func TestBaselineDeliversNearPerfect(t *testing.T) {
	res := mustRun(t, quickConfig(), 1)
	if res.Isolated.MeanDelivery < 0.95 {
		t.Fatalf("healthy system delivered %.4f to honest nodes", res.Isolated.MeanDelivery)
	}
	if !res.Usable() {
		t.Fatal("healthy system not usable")
	}
	if res.MeasuredUpdates == 0 {
		t.Fatal("no measured updates")
	}
	if res.Bandwidth.UsefulSent == 0 {
		t.Fatal("no updates exchanged")
	}
	if res.Bandwidth.AttackerSent != 0 {
		t.Fatal("attacker bandwidth without an attack")
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.2
	a := mustRun(t, cfg, 7)
	b := mustRun(t, cfg, 7)
	if a.Isolated != b.Isolated || a.Satiated != b.Satiated || a.Bandwidth != b.Bandwidth {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a.Isolated, b.Isolated)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.2
	a := mustRun(t, cfg, 7)
	b := mustRun(t, cfg, 8)
	if a.Isolated.MeanDelivery == b.Isolated.MeanDelivery && a.Bandwidth == b.Bandwidth {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

// TestSequentialEquivalence is the concurrency-correctness test: the
// concurrent batch executor must produce bit-identical results to the
// sequential executor for every attack kind.
func TestSequentialEquivalence(t *testing.T) {
	for _, kind := range []attack.Kind{attack.None, attack.Crash, attack.Ideal, attack.Trade} {
		cfg := quickConfig()
		cfg.Attack = kind
		if kind != attack.None {
			cfg.AttackerFraction = 0.2
		}
		conc := mustRun(t, cfg, 11, WithParallel())
		seq := mustRun(t, cfg, 11, WithSequential())
		if conc.Isolated != seq.Isolated || conc.Satiated != seq.Satiated ||
			conc.AllHonest != seq.AllHonest || conc.Bandwidth != seq.Bandwidth {
			t.Fatalf("%v: concurrent != sequential:\nconc %+v %+v\nseq  %+v %+v",
				kind, conc.Isolated, conc.Bandwidth, seq.Isolated, seq.Bandwidth)
		}
	}
}

// TestAttackOrdering reproduces the core qualitative result of Figure 1: at
// a fixed attacker fraction, the ideal lotus-eater hurts most, then trade,
// then crash.
func TestAttackOrdering(t *testing.T) {
	cfg := quickConfig()
	cfg.AttackerFraction = 0.2
	delivery := map[attack.Kind]float64{}
	for _, kind := range []attack.Kind{attack.Crash, attack.Ideal, attack.Trade} {
		c := cfg
		c.Attack = kind
		sum := 0.0
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			sum += mustRun(t, c, 100+s).Isolated.MeanDelivery
		}
		delivery[kind] = sum / seeds
	}
	if !(delivery[attack.Ideal] < delivery[attack.Trade]) {
		t.Fatalf("ideal (%.4f) should hurt more than trade (%.4f)", delivery[attack.Ideal], delivery[attack.Trade])
	}
	if !(delivery[attack.Trade] < delivery[attack.Crash]) {
		t.Fatalf("trade (%.4f) should hurt more than crash (%.4f)", delivery[attack.Trade], delivery[attack.Crash])
	}
}

// TestSatiatedNodesServedPerfectly checks the paper's observation that "
// satiated nodes receive near perfect service" under the ideal attack.
func TestSatiatedNodesServedPerfectly(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Ideal
	cfg.AttackerFraction = 0.1
	res := mustRun(t, cfg, 3)
	if res.Satiated.MeanDelivery < 0.97 {
		t.Fatalf("satiated group delivery %.4f, want near perfect", res.Satiated.MeanDelivery)
	}
	if res.Satiated.MeanDelivery <= res.Isolated.MeanDelivery {
		t.Fatal("satiated group should fare better than isolated group")
	}
}

// TestLargerPushBluntsIdealAttack reproduces Figure 2's direction: at the
// same attacker fraction, push size 10 delivers more to isolated nodes than
// push size 2.
func TestLargerPushBluntsIdealAttack(t *testing.T) {
	base := quickConfig()
	base.Attack = attack.Ideal
	base.AttackerFraction = 0.06
	avg := func(push int) float64 {
		cfg := base
		cfg.PushSize = push
		sum := 0.0
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			sum += mustRun(t, cfg, 40+s).Isolated.MeanDelivery
		}
		return sum / seeds
	}
	small, large := avg(2), avg(10)
	if large <= small {
		t.Fatalf("push 10 (%.4f) should beat push 2 (%.4f)", large, small)
	}
}

// TestUnbalancedExchangesHelp reproduces Figure 3's direction: slack 1
// improves isolated delivery under the trade attack.
func TestUnbalancedExchangesHelp(t *testing.T) {
	base := quickConfig()
	base.Attack = attack.Trade
	base.AttackerFraction = 0.25
	avg := func(slack int) float64 {
		cfg := base
		cfg.BalanceSlack = slack
		sum := 0.0
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			sum += mustRun(t, cfg, 60+s).Isolated.MeanDelivery
		}
		return sum / seeds
	}
	balanced, unbalanced := avg(0), avg(1)
	if unbalanced <= balanced {
		t.Fatalf("slack 1 (%.4f) should beat slack 0 (%.4f)", unbalanced, balanced)
	}
}

// TestIdealAttackerReceivesFractionOfUpdates checks the seeding model
// against the paper's arithmetic: with 12 copies seeded and 4% attacker
// nodes, the attacker receives ~1-(1-0.04)^12 = 39% of updates. We verify
// via the satiated group's free delivery being well above the attacker
// fraction alone.
func TestIdealPartialSatiation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 40
	cfg.Attack = attack.Ideal
	cfg.AttackerFraction = 0.04
	res := mustRun(t, cfg, 5)
	// Partial satiation must still be very damaging (the paper's point):
	// delivery to isolated nodes drops although the attacker sees only 39%
	// of updates.
	if res.Isolated.MeanDelivery > 0.95 {
		t.Fatalf("partial satiation did nothing: %.4f", res.Isolated.MeanDelivery)
	}
}

func TestCrashAttackBaseline(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Crash
	cfg.AttackerFraction = 0.2
	res := mustRun(t, cfg, 9)
	// All honest nodes are "isolated" under crash (nobody is satiated).
	if res.Satiated.Nodes != 0 {
		t.Fatalf("crash attack has %d satiated nodes", res.Satiated.Nodes)
	}
	if res.Isolated.Nodes != 80 {
		t.Fatalf("isolated count %d, want 80", res.Isolated.Nodes)
	}
	if res.Bandwidth.AttackerSent != 0 {
		t.Fatal("crashed attackers uploaded")
	}
}

func TestStepAfterHorizonErrors(t *testing.T) {
	cfg := quickConfig()
	eng, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("Step past horizon succeeded")
	}
}

func TestRolesAssignment(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.25
	cfg.ObedientFraction = 0.4
	eng, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	roles := eng.Roles()
	counts := map[Role]int{}
	for _, r := range roles {
		counts[r]++
	}
	if counts[RoleAttacker] != 25 {
		t.Fatalf("attackers %d, want 25", counts[RoleAttacker])
	}
	if counts[RoleObedient] != 30 { // 40% of 75 honest
		t.Fatalf("obedient %d, want 30", counts[RoleObedient])
	}
	if counts[RoleHonest] != 45 {
		t.Fatalf("honest %d, want 45", counts[RoleHonest])
	}
}

func TestRoleStrings(t *testing.T) {
	if RoleHonest.String() != "honest" || RoleObedient.String() != "obedient" ||
		RoleAttacker.String() != "attacker" {
		t.Fatal("role names wrong")
	}
	if !strings.Contains(Role(42).String(), "42") {
		t.Fatal("unknown role string")
	}
}

// TestReportingEvictsOnlyAttackers: with the excess-based report trigger,
// honest nodes are never evicted, and most attackers are.
func TestReportingEvictsOnlyAttackers(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.3
	cfg.ObedientFraction = 1
	cfg.ReportThreshold = 1
	cfg.EvictAfterReports = 2
	eng, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("reporting defense evicted nobody")
	}
	// Count evicted honest nodes via the board: delivery should not have
	// collapsed, which it would if honest nodes were being evicted.
	if res.Isolated.MeanDelivery < 0.85 {
		t.Fatalf("delivery %.4f suggests honest evictions", res.Isolated.MeanDelivery)
	}
}

// TestNoReportsWithoutAttack: a healthy fully-obedient system generates no
// evictions — honest exchanges are balanced, so no excess exists to report.
func TestNoReportsWithoutAttack(t *testing.T) {
	cfg := quickConfig()
	cfg.ObedientFraction = 1
	cfg.ReportThreshold = 1
	cfg.EvictAfterReports = 2
	res := mustRun(t, cfg, 4)
	if res.Evictions != 0 {
		t.Fatalf("healthy system evicted %d nodes", res.Evictions)
	}
}

// TestSlackWithinReportThreshold: unbalanced-by-one exchanges (slack 1) stay
// below an excess threshold of 1 and cause no evictions.
func TestSlackWithinReportThreshold(t *testing.T) {
	cfg := quickConfig()
	cfg.BalanceSlack = 1
	cfg.ObedientFraction = 1
	cfg.ReportThreshold = 1
	res := mustRun(t, cfg, 4)
	if res.Evictions != 0 {
		t.Fatalf("slack-1 exchanges evicted %d nodes", res.Evictions)
	}
}

// TestRateLimitBluntsIdealAttack reproduces E8's direction.
func TestRateLimitBluntsIdealAttack(t *testing.T) {
	base := quickConfig()
	base.Attack = attack.Ideal
	base.AttackerFraction = 0.1
	base.ObedientFraction = 1
	avg := func(cap int) float64 {
		cfg := base
		cfg.RateLimitPerPeer = cap
		sum := 0.0
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			sum += mustRun(t, cfg, 70+s).Isolated.MeanDelivery
		}
		return sum / seeds
	}
	if capped, open := avg(1), avg(0); capped <= open {
		t.Fatalf("rate cap 1 (%.4f) should beat no cap (%.4f)", capped, open)
	}
}

// TestRateLimitHarmlessWithoutAttack: the excess-based limiter must not
// throttle honest one-for-one exchanges.
func TestRateLimitHarmlessWithoutAttack(t *testing.T) {
	cfg := quickConfig()
	cfg.ObedientFraction = 1
	cfg.RateLimitPerPeer = 1
	res := mustRun(t, cfg, 4)
	if res.Isolated.MeanDelivery < 0.95 {
		t.Fatalf("rate limiter crippled healthy system: %.4f", res.Isolated.MeanDelivery)
	}
}

// TestAltruismHelpsUnderAttack: the a > 0 knob restores some isolated
// delivery under a trade attack.
func TestAltruismHelpsUnderAttack(t *testing.T) {
	base := quickConfig()
	base.Attack = attack.Trade
	base.AttackerFraction = 0.3
	avg := func(a float64) float64 {
		cfg := base
		cfg.Altruism = a
		cfg.AltruisticGive = 3
		sum := 0.0
		const seeds = 3
		for s := uint64(0); s < seeds; s++ {
			sum += mustRun(t, cfg, 80+s).Isolated.MeanDelivery
		}
		return sum / seeds
	}
	if with, without := avg(0.5), avg(0); with <= without {
		t.Fatalf("altruism 0.5 (%.4f) should beat 0 (%.4f)", with, without)
	}
}

func TestRotatingTargeterChangesGroups(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.2
	cfg.RotatePeriod = 5
	res := mustRun(t, cfg, 6)
	// Under rotation, most honest nodes spend time in both groups. With a
	// 70% satiation target over ~5 epochs, P(never isolated) = 0.7^5 = 17%,
	// so expect roughly 66 of 80 honest nodes in the isolated tally and
	// nearly all in the satiated tally.
	if res.Isolated.Nodes < 55 || res.Satiated.Nodes < 70 {
		t.Fatalf("rotation did not spread group membership: iso=%d sat=%d",
			res.Isolated.Nodes, res.Satiated.Nodes)
	}
}

func TestTrackPerNode(t *testing.T) {
	cfg := quickConfig()
	cfg.TrackPerNode = true
	res := mustRun(t, cfg, 2)
	if len(res.NodeRoundDelivery) != cfg.Nodes {
		t.Fatalf("per-node matrix has %d rows", len(res.NodeRoundDelivery))
	}
	anyMeasured := false
	for _, rounds := range res.NodeRoundDelivery {
		if len(rounds) != cfg.Rounds {
			t.Fatalf("per-node row length %d", len(rounds))
		}
		for r, v := range rounds {
			if v >= 0 {
				anyMeasured = true
				if r < cfg.Warmup || r > cfg.Rounds-cfg.Lifetime {
					t.Fatalf("round %d measured outside window", r)
				}
				if v > 1 {
					t.Fatalf("delivery fraction %g > 1", v)
				}
			}
		}
	}
	if !anyMeasured {
		t.Fatal("no per-node measurements recorded")
	}

	// Off by default.
	cfg.TrackPerNode = false
	if res := mustRun(t, cfg, 2); res.NodeRoundDelivery != nil {
		t.Fatal("per-node matrix present without TrackPerNode")
	}
}

func TestUpdateIDKey(t *testing.T) {
	a := UpdateID{Round: 3, Index: 7}
	b := UpdateID{Round: 3, Index: 8}
	c := UpdateID{Round: 4, Index: 7}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("UpdateID keys collide")
	}
}

func TestResultString(t *testing.T) {
	res := mustRun(t, quickConfig(), 1)
	s := res.String()
	for _, want := range []string{"isolated", "satiated", "bandwidth", "measured updates"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String missing %q:\n%s", want, s)
		}
	}
}

// TestConservation: an update can only ever be held by nodes after being
// seeded or transferred — the holder count never exceeds Nodes, and
// delivery fractions are well-formed.
func TestDeliveryFractionsWellFormed(t *testing.T) {
	for _, kind := range []attack.Kind{attack.None, attack.Trade, attack.Ideal} {
		cfg := quickConfig()
		cfg.Attack = kind
		if kind != attack.None {
			cfg.AttackerFraction = 0.15
		}
		res := mustRun(t, cfg, 13)
		for _, g := range []GroupStats{res.Isolated, res.Satiated, res.AllHonest} {
			if g.Nodes == 0 {
				continue
			}
			if g.MeanDelivery < 0 || g.MeanDelivery > 1 {
				t.Fatalf("%v: mean delivery %g out of [0,1]", kind, g.MeanDelivery)
			}
			if g.MinDelivery < 0 || g.MinDelivery > 1 {
				t.Fatalf("%v: min delivery %g out of [0,1]", kind, g.MinDelivery)
			}
			if g.MinDelivery > g.MeanDelivery+1e-9 {
				t.Fatalf("%v: min %g exceeds mean %g", kind, g.MinDelivery, g.MeanDelivery)
			}
			if g.UsableFraction < 0 || g.UsableFraction > 1 {
				t.Fatalf("%v: usable fraction %g", kind, g.UsableFraction)
			}
		}
	}
}

// TestCustomTargeter: a list targeter wired via WithTargeter controls
// exactly who is satiated.
func TestCustomTargeter(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.1
	eng, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Find the attacker ids, then target them plus nodes 0..29.
	var list []int
	for v, r := range eng.Roles() {
		if r == RoleAttacker {
			list = append(list, v)
		}
	}
	for v := 0; v < 30; v++ {
		list = append(list, v)
	}
	eng2, err := New(cfg, 3, WithTargeter(attack.NewListTargeter(cfg.Nodes, list)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Roughly 30 honest nodes (minus any that are attackers) are targets.
	if res.Satiated.Nodes == 0 || res.Satiated.Nodes > 30 {
		t.Fatalf("satiated group %d, want (0,30]", res.Satiated.Nodes)
	}
}

func TestBadTargeterLength(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 0.1
	eng, err := New(cfg, 3, WithTargeter(attack.NewListTargeter(5, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("mismatched targeter length accepted")
	}
}
