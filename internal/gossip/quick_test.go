package gossip

import (
	"testing"
	"testing/quick"

	"lotuseater/internal/attack"
)

// TestReplayDeterminismQuick property-tests that any (attack, fraction,
// seed) triple replays identically — the foundation every sweep and every
// figure rests on.
func TestReplayDeterminismQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("many full simulations")
	}
	err := quick.Check(func(seed uint64, kindRaw, fracRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Nodes = 60
		cfg.Rounds = 25
		cfg.Warmup = 5
		kinds := []attack.Kind{attack.None, attack.Crash, attack.Ideal, attack.Trade}
		cfg.Attack = kinds[int(kindRaw)%len(kinds)]
		if cfg.Attack != attack.None {
			cfg.AttackerFraction = float64(fracRaw%80) / 100
		}
		run := func() Result {
			eng, err := New(cfg, seed)
			if err != nil {
				return Result{}
			}
			res, err := eng.Run()
			if err != nil {
				return Result{}
			}
			return res
		}
		a, b := run(), run()
		return a.Isolated == b.Isolated && a.Satiated == b.Satiated &&
			a.AllHonest == b.AllHonest && a.Bandwidth == b.Bandwidth &&
			a.MeasuredUpdates == b.MeasuredUpdates
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryBoundedQuick: whatever the configuration, group statistics
// stay in [0, 1] and bandwidth counters stay non-negative.
func TestDeliveryBoundedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("many full simulations")
	}
	err := quick.Check(func(seed uint64, kindRaw, fracRaw, pushRaw, slackRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Nodes = 60
		cfg.Rounds = 25
		cfg.Warmup = 5
		cfg.PushSize = int(pushRaw % 12)
		cfg.BalanceSlack = int(slackRaw % 3)
		kinds := []attack.Kind{attack.None, attack.Crash, attack.Ideal, attack.Trade}
		cfg.Attack = kinds[int(kindRaw)%len(kinds)]
		if cfg.Attack != attack.None {
			cfg.AttackerFraction = float64(fracRaw%90) / 100
		}
		eng, err := New(cfg, seed)
		if err != nil {
			return false
		}
		res, err := eng.Run()
		if err != nil {
			return false
		}
		for _, g := range []GroupStats{res.Isolated, res.Satiated, res.AllHonest} {
			if g.MeanDelivery < 0 || g.MeanDelivery > 1 ||
				g.UsableFraction < 0 || g.UsableFraction > 1 {
				return false
			}
			if g.Nodes > 0 && (g.MinDelivery < 0 || g.MinDelivery > g.MeanDelivery+1e-9) {
				return false
			}
		}
		return res.Bandwidth.UsefulSent >= 0 && res.Bandwidth.JunkSent >= 0 &&
			res.Bandwidth.AttackerSent >= 0
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
