package gossip

// UpdateID identifies one broadcast update: the Index-th update released in
// round Round.
type UpdateID struct {
	Round int
	Index int
}

// Key packs the id into a uint64 for receipts and map keys.
func (u UpdateID) Key() uint64 {
	return uint64(uint32(u.Round))<<32 | uint64(uint32(u.Index))
}

// liveUpdate is the engine's record of an update that has not yet expired.
type liveUpdate struct {
	id       UpdateID
	release  int
	deadline int // last round (inclusive) the update is useful
	// holders[v] reports whether node v currently holds the update.
	holders []bool
	// pool is true once any attacker node holds the update; trade attackers
	// collude and give from the shared pool.
	pool bool
	// measured is true when the update counts toward delivery statistics
	// (released after warmup and expiring within the horizon).
	measured bool
}

// needsOf collects, for each of the two exchange parties, the live updates
// the party lacks that the counterpart can offer. It is the hot inner loop
// of the simulator, so it works on the engine's live slice directly.
//
// offerJ / offerI report, per live update index, whether j (resp. i) can
// offer the update to the other side. For honest nodes that is simply
// "holds it"; for trade attackers it is pool membership.
func (e *Engine) needsFrom(dst int, srcOffers func(u *liveUpdate) bool) []int {
	var out []int
	for idx, u := range e.live {
		if u.deadline < e.round {
			continue
		}
		if !u.holders[dst] && srcOffers(u) {
			out = append(out, idx)
		}
	}
	return out
}

// holdsOffer returns an offer predicate for an ordinary node.
func holdsOffer(v int) func(*liveUpdate) bool {
	return func(u *liveUpdate) bool { return u.holders[v] }
}

// give transfers the updates at the given live indices to node dst,
// returning how many were newly received.
func (e *Engine) give(indices []int, dst int) int {
	got := 0
	for _, idx := range indices {
		u := e.live[idx]
		if !u.holders[dst] {
			u.holders[dst] = true
			got++
		}
	}
	return got
}

// updateKeys maps live indices to UpdateID keys (for signed receipts).
func (e *Engine) updateKeys(indices []int) []uint64 {
	out := make([]uint64, len(indices))
	for k, idx := range indices {
		out[k] = e.live[idx].id.Key()
	}
	return out
}
