package gossip

// UpdateID identifies one broadcast update: the Index-th update released in
// round Round.
type UpdateID struct {
	Round int
	Index int
}

// Key packs the id into a uint64 for receipts and map keys.
func (u UpdateID) Key() uint64 {
	return uint64(uint32(u.Round))<<32 | uint64(uint32(u.Index))
}

// liveUpdate is the engine's record of an update that has not yet expired.
type liveUpdate struct {
	id       UpdateID
	release  int
	deadline int // last round (inclusive) the update is useful
	// holders[v] reports whether node v currently holds the update.
	holders []bool
	// pool is true once any attacker node holds the update; trade attackers
	// collude and give from the shared pool.
	pool bool
	// measured is true when the update counts toward delivery statistics
	// (released after warmup and expiring within the horizon).
	measured bool
}

// takeNeeds hands out the slot-th pooled needs buffer on the sequential
// executor; under WithParallel execs run concurrently and must not share
// scratch, so a nil slice (heap append) comes back instead. Each exec uses
// at most two needs-shaped buffers at once, hence two slots.
//
//lotus:allocfree
func (e *Engine) takeNeeds(slot int) []int {
	if e.parallel {
		return nil
	}
	return e.needScratch[slot][:0]
}

// storeNeeds writes a possibly-regrown pooled buffer back to its slot.
//
//lotus:allocfree
func (e *Engine) storeNeeds(slot int, buf []int) {
	if !e.parallel {
		e.needScratch[slot] = buf
	}
}

// needsFrom collects the live updates dst lacks that src holds and can
// offer. It is the hot inner loop of the simulator, so it works on the
// engine's live slice directly, appends into the slot-th pooled buffer (see
// takeNeeds), and takes the offering side as a plain node id — a predicate
// closure here would allocate once per exchange, O(Nodes) per round.
//
//lotus:allocfree
func (e *Engine) needsFrom(dst, src int, slot int) []int {
	out := e.takeNeeds(slot)
	for idx, u := range e.live {
		if u.deadline < e.round {
			continue
		}
		if !u.holders[dst] && u.holders[src] {
			out = append(out, idx)
		}
	}
	e.storeNeeds(slot, out)
	return out
}

// give transfers the updates at the given live indices to node dst,
// returning how many were newly received.
//
//lotus:allocfree
func (e *Engine) give(indices []int, dst int) int {
	got := 0
	for _, idx := range indices {
		u := e.live[idx]
		if !u.holders[dst] {
			u.holders[dst] = true
			got++
		}
	}
	return got
}

// updateKeys maps live indices to UpdateID keys (for signed receipts).
func (e *Engine) updateKeys(indices []int) []uint64 {
	out := make([]uint64, len(indices))
	for k, idx := range indices {
		out[k] = e.live[idx].id.Key()
	}
	return out
}
