package gossip

import (
	"testing"

	"lotuseater/internal/attack"
)

// TestEngineInvariants drives engines step by step under every attack kind
// and checks internal invariants the statistics depend on:
//
//   - update conservation: an update's holder set only grows while live;
//   - expiry: the live list never contains an update past its deadline;
//   - monotone eviction: evicted nodes stay evicted;
//   - bounded live set: at most Lifetime rounds' worth of updates live.
func TestEngineInvariants(t *testing.T) {
	for _, kind := range []attack.Kind{attack.None, attack.Crash, attack.Ideal, attack.Trade} {
		cfg := quickConfig()
		cfg.Attack = kind
		if kind != attack.None {
			cfg.AttackerFraction = 0.2
		}
		cfg.ObedientFraction = 0.5
		cfg.ReportThreshold = 1
		cfg.RateLimitPerPeer = 8
		eng, err := New(cfg, 99)
		if err != nil {
			t.Fatal(err)
		}

		holderCount := map[UpdateID]int{}
		evictedBefore := map[int]bool{}
		for round := 0; round < cfg.Rounds; round++ {
			if err := eng.Step(); err != nil {
				t.Fatal(err)
			}
			if len(eng.live) > cfg.Lifetime*cfg.UpdatesPerRound {
				t.Fatalf("%v: %d live updates exceeds bound %d", kind, len(eng.live), cfg.Lifetime*cfg.UpdatesPerRound)
			}
			for _, u := range eng.live {
				if u.deadline < eng.round-1 {
					t.Fatalf("%v: expired update %v still live at round %d", kind, u.id, eng.round)
				}
				count := 0
				for _, h := range u.holders {
					if h {
						count++
					}
				}
				if prev, seen := holderCount[u.id]; seen && count < prev {
					t.Fatalf("%v: update %v lost holders: %d -> %d", kind, u.id, prev, count)
				}
				holderCount[u.id] = count
				if count == 0 {
					t.Fatalf("%v: live update %v has no holders (seeding guarantees at least one)", kind, u.id)
				}
			}
			for v, ev := range eng.evicted {
				if evictedBefore[v] && !ev {
					t.Fatalf("%v: node %d un-evicted", kind, v)
				}
				if ev {
					evictedBefore[v] = true
				}
			}
		}
	}
}

// TestEngineSmallestSystem exercises the 2-node corner: one initiator, one
// partner, every round.
func TestEngineSmallestSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.CopiesSeeded = 1
	cfg.Rounds = 25
	cfg.Warmup = 5
	res := mustRun(t, cfg, 1)
	// With 1 seed copy and 2 nodes, every update starts on one node and the
	// other must trade for it; balanced exchanges require mutual need, so
	// pushes carry the load. Delivery just needs to be sane, not perfect.
	if res.AllHonest.MeanDelivery <= 0 || res.AllHonest.MeanDelivery > 1 {
		t.Fatalf("two-node delivery %.4f", res.AllHonest.MeanDelivery)
	}
}

// TestEngineFullAttackerFraction: the whole system attacker-controlled must
// not panic or divide by zero — there are simply no honest nodes to measure.
func TestEngineFullAttackerFraction(t *testing.T) {
	cfg := quickConfig()
	cfg.Attack = attack.Trade
	cfg.AttackerFraction = 1
	res := mustRun(t, cfg, 1)
	if res.Isolated.Nodes != 0 || res.Satiated.Nodes != 0 || res.AllHonest.Nodes != 0 {
		t.Fatalf("groups non-empty with no honest nodes: %+v", res)
	}
}

// TestEngineNoPushes: PushSize 0 disables the push phase entirely; balanced
// exchanges alone deliver noticeably less.
func TestEngineNoPushes(t *testing.T) {
	withPush := quickConfig()
	withoutPush := quickConfig()
	withoutPush.PushSize = 0
	a := mustRun(t, withPush, 5)
	b := mustRun(t, withoutPush, 5)
	if b.AllHonest.MeanDelivery >= a.AllHonest.MeanDelivery {
		t.Fatalf("pushes did not matter: %.4f vs %.4f", b.AllHonest.MeanDelivery, a.AllHonest.MeanDelivery)
	}
	if b.Bandwidth.JunkSent != 0 {
		t.Fatal("junk uploaded without pushes")
	}
}

// TestEverySeededUpdateIsDeliverable: with CopiesSeeded = Nodes, everyone
// starts with everything — delivery is exactly 1 and no trades happen.
func TestEverySeededUpdateIsDeliverable(t *testing.T) {
	cfg := quickConfig()
	cfg.CopiesSeeded = cfg.Nodes
	res := mustRun(t, cfg, 2)
	if res.AllHonest.MeanDelivery != 1 {
		t.Fatalf("delivery %.4f with universal seeding", res.AllHonest.MeanDelivery)
	}
	if res.Bandwidth.UsefulSent != 0 {
		t.Fatalf("%d updates traded when nobody needed anything", res.Bandwidth.UsefulSent)
	}
}

// TestSatiationCompatibilityStructural: a node holding every live update
// initiates nothing — the protocol property the whole paper rests on,
// verified against the engine's own planner.
func TestSatiationCompatibilityStructural(t *testing.T) {
	cfg := quickConfig()
	eng, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Run a few rounds, then force-satiate node 0 by hand and verify the
	// planner excludes it.
	for i := 0; i < 5; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range eng.live {
		u.holders[0] = true
	}
	for _, p := range eng.planBalanced() {
		if p.initiator == 0 {
			t.Fatal("satiated node initiated a balanced exchange")
		}
	}
	for _, p := range eng.planPush() {
		if p.initiator == 0 {
			t.Fatal("satiated node initiated an optimistic push")
		}
	}
}
