// Coding defense: Section 4 of the paper suggests network coding (as in
// Avalanche) as a way to make satiation hard — "nodes need to collect only
// enough independent tokens to reconstruct the full information rather than
// the complete set of tokens".
//
// This example mounts the rare-token attack from Section 3 — satiate the
// sole holders of several source symbols so they stop serving — against two
// otherwise identical gossip systems:
//
//   - plain: nodes trade whole symbols; the attacked symbols are denied to
//     the entire system;
//
//   - coded: nodes trade random linear combinations over GF(2^8); every
//     packet carries information about all symbols, so no symbol is rare
//     and the attack buys nothing.
//
//     go run ./examples/codingdefense
package main

import (
	"fmt"
	"log"

	"lotuseater"
)

func main() {
	const (
		nodes   = 120
		symbols = 24
		rare    = 8 // unique holders the attacker satiates
	)
	// Symbols 0..rare-1 each start on exactly one node; the rest are
	// duplicated across the population.
	alloc := make([]int, nodes)
	for v := range alloc {
		if v < symbols {
			alloc[v] = v
		} else {
			alloc[v] = symbols - 1 - v%(symbols-rare)
		}
	}
	targets := make([]int, rare)
	for i := range targets {
		targets[i] = i
	}

	run := func(coded bool) lotuseater.DisseminationResult {
		cfg := lotuseater.DisseminationConfig{
			Graph:       lotuseater.RegularishGraph(nodes, 4, 99),
			Symbols:     symbols,
			PayloadSize: 64,
			Contacts:    2,
			Rounds:      60,
			Coded:       coded,
			Allocation:  alloc,
		}
		sim, err := lotuseater.NewDissemination(cfg, 5, targets)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	plain := run(false)
	coded := run(true)

	fmt.Printf("rare-token attack: satiate the unique holders of %d of %d symbols\n\n", rare, symbols)
	fmt.Printf("plain token gossip:\n")
	fmt.Printf("  mean file reconstructible: %.1f%%\n", 100*plain.MeanProgress)
	fmt.Printf("  nodes with the whole file: %.1f%%\n\n", 100*plain.CompletedFraction)
	fmt.Printf("random linear network coding:\n")
	fmt.Printf("  mean file reconstructible: %.1f%%\n", 100*coded.MeanProgress)
	fmt.Printf("  nodes with the whole file: %.1f%%\n", 100*coded.CompletedFraction)
	fmt.Printf("  decode verified against sources: %v\n\n", coded.DecodeVerified)
	fmt.Println("under coding there is no rare token to deny: every initial packet")
	fmt.Println("already mixes all source symbols, so silencing any one node's")
	fmt.Println("holdings costs the system (almost) nothing.")
}
