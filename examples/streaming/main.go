// Streaming: the paper's motivating scenario for BAR Gossip is streaming
// video, where updates are frames with hard deadlines. This example shows
// the remark at the end of Section 2: "by changing who is satiated over
// time, the attacker could even make the service intermittently unusable
// for all nodes."
//
// It runs the same attack twice — once with a static satiated set, once
// re-drawing the set every 20 rounds — and prints, per node group, how many
// viewing windows dropped below the 93% usability threshold.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"lotuseater"
)

func main() {
	const period = 20

	rows, err := lotuseater.RotatingExperiment(7, period)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trade lotus-eater attack on a streaming service (8% attacker nodes)")
	fmt.Printf("usability threshold: 93%% of frames per %d-round window\n\n", period)
	for _, r := range rows {
		fmt.Printf("%-9s satiated set:\n", r.Name)
		fmt.Printf("  mean delivery:           %.1f%%\n", 100*r.MeanDelivery)
		fmt.Printf("  viewers hit by an outage: %.0f%%\n", 100*r.NodesWithOutage)
		fmt.Printf("  outage windows per viewer: %.2f of %d\n\n", r.MeanOutageEpochs, r.Epochs)
	}
	fmt.Println("static targeting starves a fixed minority; rotating the satiated set")
	fmt.Println("spreads the outages over (nearly) every viewer — the stream becomes")
	fmt.Println("intermittently unusable for all, exactly as the paper warns.")
}
