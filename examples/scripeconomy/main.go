// Scrip economy: lotus-eater attacks on an indirect-reciprocity system.
//
// Rational agents in a scrip system play a threshold strategy — provide
// service only while holding less than k units — so an attacker that keeps
// an agent's balance at k silences it. This example demonstrates the two
// sides of Section 4's "making satiation hard" analysis:
//
//  1. Satiating a few agents who control a rare resource is cheap and
//     devastating for that resource's consumers.
//
//  2. Satiating a large fraction is throttled by the fixed money supply
//     when the attacker must earn its scrip in-system.
//
//     go run ./examples/scripeconomy
package main

import (
	"fmt"
	"log"

	"lotuseater"
)

func main() {
	// Part 1: deny a rare resource by satiating its few providers.
	cfg := lotuseater.DefaultScripConfig()
	cfg.SpecialProviders = 10
	cfg.SpecialRequestFraction = 0.05

	run := func(attacked bool) lotuseater.ScripResult {
		sim, err := lotuseater.NewScrip(cfg, 11)
		if err != nil {
			log.Fatal(err)
		}
		if attacked {
			targets := make([]int, cfg.SpecialProviders)
			for i := range targets {
				targets[i] = i
			}
			if err := sim.Attack(lotuseater.ScripAttackPlan{
				Targets:    targets,
				Budget:     1 << 20, // a deep-pocketed attacker
				StartRound: 1000,
			}); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base, hit := run(false), run(true)
	fmt.Println("part 1: satiate the 10 agents who control a rare resource")
	fmt.Printf("  specialty availability, no attack: %.1f%%\n", 100*base.SpecialAvailability)
	fmt.Printf("  specialty availability, attacked:  %.1f%%\n", 100*hit.SpecialAvailability)
	fmt.Printf("  attacker spend: %d scrip (opening supply was %d)\n\n",
		hit.AttackerSpent, cfg.Agents*cfg.MoneyPerCapita)

	// Part 2: try to satiate 60% of the whole economy on earned scrip only.
	cfg2 := lotuseater.DefaultScripConfig()
	cfg2.AttackerFraction = 0.05
	sim, err := lotuseater.NewScrip(cfg2, 12)
	if err != nil {
		log.Fatal(err)
	}
	var targets []int
	want := int(0.6 * float64(cfg2.Agents))
	for i := 0; i < cfg2.Agents && len(targets) < want; i++ {
		if sim.Kind(i) != lotuseater.ScripAttackerAgent { // cannot target own agents
			targets = append(targets, i)
		}
	}
	if err := sim.Attack(lotuseater.ScripAttackPlan{Targets: targets, StartRound: 1000}); err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("part 2: satiate 60% of the economy with in-system earnings only")
	fmt.Printf("  fraction of targets actually held satiated: %.1f%%\n", 100*res.SatiatedTargetFraction)
	fmt.Printf("  rounds the attacker ran out of scrip:       %d\n", res.AttackerShortfall)
	fmt.Println("  -> \"there may not even be enough money in the system to satiate")
	fmt.Println("     a significant fraction of the nodes\" (Section 4)")
}
