// Quickstart: run BAR Gossip healthy, then under a trade lotus-eater
// attack, and compare what the isolated nodes receive.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lotuseater"
)

func main() {
	// Table 1 of the paper: 250 nodes, 10 updates/round, lifetime 10,
	// 12 copies seeded, push size 2.
	cfg := lotuseater.DefaultGossipConfig()

	healthy, err := lotuseater.NewGossip(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	base, err := healthy.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy system:       %.1f%% of updates delivered\n",
		100*base.AllHonest.MeanDelivery)

	// The trade lotus-eater attack: the attacker controls 25% of the nodes
	// and gives a targeted 70% of the system every update it holds, while
	// giving the rest nothing. No protocol message is ever violated — the
	// attacker is simply "too nice" to the chosen nodes.
	cfg.Attack = lotuseater.AttackTrade
	cfg.AttackerFraction = 0.25

	attacked, err := lotuseater.NewGossip(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacked.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satiated nodes:       %.1f%% delivered (the attacker's favorites)\n",
		100*res.Satiated.MeanDelivery)
	fmt.Printf("isolated nodes:       %.1f%% delivered\n",
		100*res.Isolated.MeanDelivery)
	fmt.Printf("stream usable (>%.0f%%) for isolated nodes: %v\n",
		100*cfg.UsableThreshold, res.Usable())
	fmt.Printf("attacker bandwidth:   %d updates uploaded\n", res.Bandwidth.AttackerSent)
}
