// Observation 3.1, executable: "In a system where a satiation-compatible
// protocol is used, an attacker that can provide a node with tokens
// sufficiently rapidly can prevent it from ever providing service."
//
// This example drives the paper's informal theorem through the core
// satiation framework: a token-collecting node under attackers of varying
// speed, and the same node with a little altruism (which breaks
// satiation-compatibility and with it the observation's premise).
//
//	go run ./examples/observation
package main

import (
	"fmt"
	"log"

	"lotuseater/internal/core"
)

func main() {
	universe := core.NewTokenSet()
	for t := core.Token(0); t < 20; t++ {
		universe.Add(t)
	}

	protocol := &core.TokenCollector{
		Sat:                core.CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
	}

	// Sanity check: the protocol really is satiation-compatible.
	samples := []core.NodeState{
		{Time: 0, Held: core.NewTokenSet()},
		{Time: 0, Held: universe.Clone()},
	}
	if err := core.CheckSatiationCompatible(protocol, samples); err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol is satiation-compatible (verified)")
	fmt.Printf("target wants %d tokens; it serves 1 unit per round while hungry\n\n", universe.Len())

	fmt.Println("attacker rate   service the target ever provides (50 rounds)")
	for _, rate := range []int{0, 1, 5, 10, 20} {
		res, err := core.RunObservation(core.ObservationConfig{
			Protocol: protocol,
			Attacker: core.AttackerModel{Rate: rate, Universe: universe},
			Rounds:   50,
		})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if res.ServiceProvided == 0 {
			note = "   << silenced from round 0 (Observation 3.1)"
		}
		fmt.Printf("  %2d tokens/rd   %2d units%s\n", rate, res.ServiceProvided, note)
	}

	// The escape hatch: a protocol with altruism a > 0 is not
	// satiation-compatible, and the observation's conclusion fails.
	altruistic := &core.TokenCollector{
		Sat:                core.CompleteSetSatiation(universe),
		ServiceWhileHungry: 1,
		AltruisticService:  1,
	}
	res, err := core.RunObservation(core.ObservationConfig{
		Protocol: altruistic,
		Attacker: core.AttackerModel{Rate: 20, Universe: universe},
		Rounds:   50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith altruism (a > 0), the same instant attacker cannot silence the node:\n")
	fmt.Printf("  20 tokens/rd   %d units of service over 50 rounds\n", res.ServiceProvided)
}
