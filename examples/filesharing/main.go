// File sharing: why the lotus-eater attack "seems likely to do
// significantly less damage" in BitTorrent (Section 1), and how rarest-first
// piece selection keeps an attacker from manufacturing a "last pieces
// problem".
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	"lotuseater"
)

func run(cfg lotuseater.SwarmConfig, seed uint64) lotuseater.SwarmResult {
	sim, err := lotuseater.NewSwarm(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Part 1: satiate the swarm's best uploaders. Completed leechers keep
	// seeding, so the attacker's bandwidth is a donation.
	base := lotuseater.DefaultSwarmConfig()
	attacked := base
	attacked.Attack = lotuseater.SwarmAttackTopUploaders
	attacked.AttackerUplink = 32
	attacked.AttackTargets = 8

	b, a := run(base, 1), run(attacked, 1)
	fmt.Println("part 1: satiate the top uploaders of a healthy swarm")
	fmt.Printf("  no attack:  %.0f%% complete, mean %.0f ticks\n", 100*b.CompletedFraction, b.MeanCompletionTick)
	fmt.Printf("  attacked:   %.0f%% complete, mean %.0f ticks\n", 100*a.CompletedFraction, a.MeanCompletionTick)
	fmt.Println("  -> the attack is \"often actually a net benefit to the torrent\"")
	fmt.Println()

	// Part 2: the rare-piece campaign against a fragile swarm (initial seed
	// departs; finished leechers leave). Compare piece-selection policies.
	fragile := base
	fragile.SeedDepartTick = 60
	fragile.SeedAfterComplete = false
	fragile.Ticks = 600
	fragile.Attack = lotuseater.SwarmAttackRarePieceHolders
	fragile.AttackerUplink = 64
	fragile.AttackTargets = 2
	fragile.AttackStartTick = 10
	fragile.AttackStopTick = 60

	random := fragile
	random.Selection = lotuseater.SwarmSelectRandom

	fmt.Println("part 2: remove rare-piece carriers before the seed departs")
	var rfLost, rndLost, rfDone, rndDone float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		rf := run(fragile, 10+s)
		rnd := run(random, 10+s)
		rfLost += float64(rf.LostPieces)
		rndLost += float64(rnd.LostPieces)
		rfDone += rf.CompletedFraction
		rndDone += rnd.CompletedFraction
	}
	fmt.Printf("  rarest-first: %.0f%% complete, %.1f pieces lost (avg of %d runs)\n",
		100*rfDone/seeds, rfLost/seeds, seeds)
	fmt.Printf("  random:       %.0f%% complete, %.1f pieces lost\n",
		100*rndDone/seeds, rndLost/seeds)
	fmt.Println("  -> even a targeted campaign barely dents the swarm; the attacker")
	fmt.Println("     must donate the full file to each leecher it removes")
}
