package lotuseater

import (
	"lotuseater/internal/experiment"
	"lotuseater/internal/metrics"
)

// The experiment drivers live in internal/experiment, where each one is
// also a named entry in the experiment registry (run `lotus-sim list` for
// the catalogue, or call Experiments / RunExperiment from Go). This file
// keeps the original top-level API as thin shims over that package.

// Series re-exports the metrics series type used by all experiment drivers.
type Series = metrics.Series

// Artifact is a named experiment output (series or table) with text, CSV,
// and JSON encoders.
type Artifact = metrics.Artifact

// Quality controls the fidelity/runtime trade-off of an experiment sweep.
type Quality = experiment.Quality

// ExperimentEntry is a named, self-describing experiment in the registry.
type ExperimentEntry = experiment.Experiment

// GridCutResult is one row of the grid-cut experiment (E2).
type GridCutResult = experiment.GridCutResult

// SwarmRow is one scenario of the swarm experiment (E5).
type SwarmRow = experiment.SwarmRow

// RotatingResult summarizes one arm of the rotating-target experiment (E9).
type RotatingResult = experiment.RotatingResult

// FullQuality reproduces the figures at paper fidelity.
func FullQuality() Quality { return experiment.FullQuality() }

// QuickQuality is for tests and smoke runs.
func QuickQuality() Quality { return experiment.QuickQuality() }

// Experiments returns every registered experiment sorted by name.
func Experiments() []ExperimentEntry { return experiment.All() }

// RunExperiment executes a registered experiment by name, e.g. "figure1".
func RunExperiment(name string, seed uint64, q Quality) (*Artifact, error) {
	return experiment.Run(name, seed, q)
}

// Figure1 regenerates Figure 1 of the paper: fraction of updates received
// by isolated nodes versus the fraction of nodes controlled by the
// attacker, for the crash, ideal lotus-eater, and trade lotus-eater
// attacks, at Table 1 parameters (push size 2).
func Figure1(seed uint64, q Quality) []*Series { return experiment.Figure1(seed, q) }

// Figure2 regenerates Figure 2: the same three attacks with the optimistic
// push size raised to 10, which makes partial satiation far less effective.
func Figure2(seed uint64, q Quality) []*Series { return experiment.Figure2(seed, q) }

// Figure3 regenerates Figure 3: the trade lotus-eater attack against the
// obedient "slightly unbalanced exchange" variant (give one more update
// than received), alone and combined with a push size of 4.
func Figure3(seed uint64, q Quality) []*Series { return experiment.Figure3(seed, q) }

// AltruismExperiment (E1) sweeps the token model's altruism parameter a
// under a static satiation attack on half the system.
func AltruismExperiment(seed uint64, q Quality) *Series {
	return experiment.AltruismExperiment(seed, q)
}

// GridCutExperiment (E2) satiates a column of a 16x16 grid — a cheap cut —
// versus the same number of random nodes in a degree-matched random graph.
func GridCutExperiment(seed uint64) ([]GridCutResult, error) {
	return experiment.GridCutExperiment(seed)
}

// RareTokenExperiment (E3) satiates the single initial holder of a rare
// token and sweeps altruism a.
func RareTokenExperiment(seed uint64, q Quality) *Series {
	return experiment.RareTokenExperiment(seed, q)
}

// ScripMoneySupplyExperiment (E4a) sweeps the fraction of agents the
// attacker tries to keep satiated from in-system earnings alone.
func ScripMoneySupplyExperiment(seed uint64, q Quality) *Series {
	return experiment.ScripMoneySupplyExperiment(seed, q)
}

// ScripRareProviderExperiment (E4b) reproduces the paper's rare-resource
// harm and the altruist-provider defense.
func ScripRareProviderExperiment(seed uint64, q Quality) []*Series {
	return experiment.ScripRareProviderExperiment(seed, q)
}

// SatiateFractionAblation (A1) reproduces the paper's reasoning for
// targeting 70% of the system.
func SatiateFractionAblation(seed uint64, q Quality) []*Series {
	return experiment.SatiateFractionAblation(seed, q)
}

// ScripInflationExperiment (E10, extension) satiates the whole economy by
// untargeted scrip gifts.
func ScripInflationExperiment(seed uint64, q Quality) *Series {
	return experiment.ScripInflationExperiment(seed, q)
}

// ScripHoardingExperiment (E11, extension) shows service hoarders draining
// the money supply.
func ScripHoardingExperiment(seed uint64, q Quality) *Series {
	return experiment.ScripHoardingExperiment(seed, q)
}

// SwarmExperiment (E5) reproduces the paper's BitTorrent analysis.
func SwarmExperiment(seed uint64, seeds int) ([]SwarmRow, error) {
	return experiment.SwarmExperiment(seed, seeds)
}

// CodingExperiment (E6) compares plain token gossip against random linear
// network coding under the rare-token attack.
func CodingExperiment(seed uint64, q Quality) []*Series {
	return experiment.CodingExperiment(seed, q)
}

// ReportingExperiment (E7) sweeps the obedient fraction under a trade
// lotus-eater attack with the reporting defense on.
func ReportingExperiment(seed uint64, q Quality) []*Series {
	return experiment.ReportingExperiment(seed, q)
}

// RateLimitExperiment (E8) sweeps the per-peer service rate cap against the
// ideal lotus-eater attack.
func RateLimitExperiment(seed uint64, q Quality) []*Series {
	return experiment.RateLimitExperiment(seed, q)
}

// RotatingExperiment (E9) contrasts static and rotating satiated sets.
func RotatingExperiment(seed uint64, period int) ([]RotatingResult, error) {
	return experiment.RotatingExperiment(seed, period)
}

// Table1 returns the paper's simulation parameters (Table 1) as rendered
// rows, sourced from DefaultGossipConfig so the table cannot drift from the
// code.
func Table1() [][]string { return experiment.Table1() }
