package lotuseater

import (
	"fmt"

	"lotuseater/internal/attack"
	"lotuseater/internal/coding"
	"lotuseater/internal/gossip"
	"lotuseater/internal/graph"
	"lotuseater/internal/metrics"
	"lotuseater/internal/scrip"
	"lotuseater/internal/simrng"
	"lotuseater/internal/swarm"
	"lotuseater/internal/sweep"
	"lotuseater/internal/tokenmodel"
)

// Series re-exports the metrics series type used by all experiment drivers.
type Series = metrics.Series

// Quality controls the fidelity/runtime trade-off of an experiment sweep.
type Quality struct {
	// Points is the number of x-axis samples.
	Points int
	// Seeds is the number of replications averaged per point.
	Seeds int
}

// FullQuality reproduces the figures at paper fidelity.
func FullQuality() Quality { return Quality{Points: 26, Seeds: 5} }

// QuickQuality is for tests and smoke runs.
func QuickQuality() Quality { return Quality{Points: 6, Seeds: 1} }

func (q Quality) normalize() Quality {
	if q.Points < 2 {
		q.Points = 2
	}
	if q.Seeds < 1 {
		q.Seeds = 1
	}
	return q
}

// gossipDeliverySweep sweeps attacker fraction for one attack/config
// variant and returns the isolated-node delivery series.
func gossipDeliverySweep(name string, base GossipConfig, kind AttackKind, xs []float64, seeds int, seed uint64) *Series {
	return sweep.Run(sweep.Config{Name: name, Xs: xs, Seeds: seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		cfg := base
		cfg.Attack = kind
		cfg.AttackerFraction = x
		if x == 0 {
			cfg.Attack = attack.None
		}
		eng, err := gossip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		res, err := eng.Run()
		if err != nil {
			return 0
		}
		return res.Isolated.MeanDelivery
	})
}

// Figure1 regenerates Figure 1 of the paper: fraction of updates received
// by isolated nodes versus the fraction of nodes controlled by the
// attacker, for the crash, ideal lotus-eater, and trade lotus-eater
// attacks, at Table 1 parameters (push size 2).
func Figure1(seed uint64, q Quality) []*Series {
	q = q.normalize()
	base := gossip.DefaultConfig()
	xs := sweep.Range(0, 0.9, q.Points)
	return []*Series{
		gossipDeliverySweep("crash", base, attack.Crash, xs, q.Seeds, seed),
		gossipDeliverySweep("ideal-lotus-eater", base, attack.Ideal, xs, q.Seeds, seed),
		gossipDeliverySweep("trade-lotus-eater", base, attack.Trade, xs, q.Seeds, seed),
	}
}

// Figure2 regenerates Figure 2: the same three attacks with the optimistic
// push size raised to 10, which makes partial satiation far less effective.
func Figure2(seed uint64, q Quality) []*Series {
	q = q.normalize()
	base := gossip.DefaultConfig()
	base.PushSize = 10
	xs := sweep.Range(0, 0.9, q.Points)
	return []*Series{
		gossipDeliverySweep("crash", base, attack.Crash, xs, q.Seeds, seed),
		gossipDeliverySweep("ideal-lotus-eater", base, attack.Ideal, xs, q.Seeds, seed),
		gossipDeliverySweep("trade-lotus-eater", base, attack.Trade, xs, q.Seeds, seed),
	}
}

// Figure3 regenerates Figure 3: the trade lotus-eater attack against the
// obedient "slightly unbalanced exchange" variant (give one more update
// than received), alone and combined with a push size of 4.
func Figure3(seed uint64, q Quality) []*Series {
	q = q.normalize()
	xs := sweep.Range(0, 0.7, q.Points)
	variant := func(name string, pushSize, slack int) *Series {
		base := gossip.DefaultConfig()
		base.PushSize = pushSize
		base.BalanceSlack = slack
		return gossipDeliverySweep(name, base, attack.Trade, xs, q.Seeds, seed)
	}
	return []*Series{
		variant("push2-balanced", 2, 0),
		variant("push2-unbalanced", 2, 1),
		variant("push4-balanced", 4, 0),
		variant("push4-unbalanced", 4, 1),
	}
}

// AltruismExperiment (E1) sweeps the token model's altruism parameter a
// under a static satiation attack on half the system. Satiated nodes are
// dead weight at a = 0 (the isolated half gossips on a diluted graph and
// stalls); as a grows, satiated nodes keep responding and the isolated half
// completes. The y value is the completed fraction among non-targets.
func AltruismExperiment(seed uint64, q Quality) *Series {
	q = q.normalize()
	// The transition happens at very small a: even a few-percent chance of
	// a satiated node responding restores the isolated half. Sweep the
	// interesting region.
	xs := sweep.Range(0, 0.1, q.Points)
	return sweep.Run(sweep.Config{Name: "isolated-completed-fraction", Xs: xs, Seeds: q.Seeds}, seed, func(a float64, rng *simrng.Source) float64 {
		const n = 200
		g := graph.RandomRegularish(n, 4, rng.Child("graph"))
		cfg := tokenmodel.Config{
			Graph:    g,
			Tokens:   50,
			Contacts: 2,
			Altruism: a,
			Rounds:   80,
		}
		targets := rng.Child("targets").SampleInts(n, n/2)
		sim, err := tokenmodel.New(cfg, rng.Uint64(), tokenmodel.WithTargeter(attack.NewListTargeter(n, targets)))
		if err != nil {
			return 0
		}
		if _, err := sim.Run(); err != nil {
			return 0
		}
		isTarget := make([]bool, n)
		for _, t := range targets {
			isTarget[t] = true
		}
		done, total := 0, 0
		for v := 0; v < n; v++ {
			if isTarget[v] {
				continue
			}
			total++
			if sim.Satiated(v) {
				done++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(done) / float64(total)
	})
}

// GridCutResult is one row of the grid-cut experiment (E2).
type GridCutResult struct {
	Topology string
	// SatiatedNodes is the attack cost (16 of 256 nodes for the cut).
	SatiatedNodes int
	// RareTokenCoverage is the fraction of nodes ever holding the rare
	// token — the denial metric.
	RareTokenCoverage float64
	// CompletedFraction is the fraction of nodes that collected everything.
	CompletedFraction float64
}

// GridCutExperiment (E2) satiates a column of a 16x16 grid — a cheap cut —
// versus the same number of random nodes in a degree-matched random graph,
// with altruism a = 0 so satiated nodes are true barriers. A rare token
// lives only on the grid's left edge; with the column satiated, "nodes on
// that side of the cut will never be able to collect all the tokens": the
// rare token's coverage pins to the left side exactly. The random graph has
// no cheap cut, so the same-sized attack leaves coverage at 1.
//
// Note the pure a = 0 model is absorbing — nodes that complete naturally
// stop serving too, so CompletedFraction stalls near zero even without an
// attack (a dynamic the paper itself points out). Coverage of the rare
// token is the meaningful denial metric.
func GridCutExperiment(seed uint64) ([]GridCutResult, error) {
	const (
		rows, cols = 16, 16
		cutCol     = 8
		tokens     = 50
		rareCopies = 16
	)
	rng := simrng.New(seed)
	n := rows * cols

	// Tokens 1..49 are spread uniformly at random; token 0's five holders
	// sit on the left edge (grid) or anywhere (random graph — placement is
	// irrelevant without a cut).
	alloc := make([]int, n)
	allocRNG := rng.Child("alloc")
	for v := range alloc {
		alloc[v] = 1 + allocRNG.IntN(tokens-1)
	}
	for i := 0; i < rareCopies; i++ {
		alloc[(rows/rareCopies*i)*cols+0] = 0
	}
	cut := graph.GridColumnCut(rows, cols, cutCol)

	run := func(name string, g *graph.Graph, targets []int, runSeed uint64) (GridCutResult, error) {
		cfg := tokenmodel.Config{
			Graph:      g,
			Tokens:     tokens,
			Contacts:   2,
			Altruism:   0,
			Rounds:     120,
			Allocation: alloc,
		}
		sim, err := tokenmodel.New(cfg, runSeed, tokenmodel.WithTargeter(attack.NewListTargeter(n, targets)))
		if err != nil {
			return GridCutResult{}, err
		}
		res, err := sim.Run()
		if err != nil {
			return GridCutResult{}, err
		}
		return GridCutResult{
			Topology:          name,
			SatiatedNodes:     len(targets),
			RareTokenCoverage: res.TokenCoverage[0],
			CompletedFraction: res.CompletedFraction,
		}, nil
	}

	grid := graph.Grid(rows, cols)
	random := graph.RandomRegularish(n, 4, rng.Child("random-graph"))
	randomTargets := rng.Child("random-targets").SampleInts(n, len(cut))

	var out []GridCutResult
	for _, spec := range []struct {
		name    string
		g       *graph.Graph
		targets []int
	}{
		{"grid/no-attack", grid, nil},
		{"grid/column-cut", grid, cut},
		{"random/no-attack", random, nil},
		{"random/same-size-target", random, randomTargets},
	} {
		row, err := run(spec.name, spec.g, spec.targets, rng.Child("run-"+spec.name).Uint64())
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// RareTokenExperiment (E3) satiates the single initial holder of a rare
// token and sweeps altruism a: with a = 0 the whole system is denied that
// token for the cost of satiating one node; any a > 0 eventually leaks it.
func RareTokenExperiment(seed uint64, q Quality) *Series {
	q = q.normalize()
	xs := sweep.Range(0, 0.3, q.Points)
	return sweep.Run(sweep.Config{Name: "completed-fraction", Xs: xs, Seeds: q.Seeds}, seed, func(a float64, rng *simrng.Source) float64 {
		const n, tokens = 100, 10
		alloc := make([]int, n)
		alloc[0] = 0 // node 0 is the sole holder of token 0
		for v := 1; v < n; v++ {
			alloc[v] = 1 + (v-1)%(tokens-1)
		}
		cfg := tokenmodel.Config{
			Graph:      graph.Complete(n),
			Tokens:     tokens,
			Contacts:   1,
			Altruism:   a,
			Rounds:     60,
			Allocation: alloc,
		}
		sim, err := tokenmodel.New(cfg, rng.Uint64(), tokenmodel.WithTargeter(attack.NewListTargeter(n, []int{0})))
		if err != nil {
			return 0
		}
		res, err := sim.Run()
		if err != nil {
			return 0
		}
		return res.CompletedFraction
	})
}

// ScripMoneySupplyExperiment (E4a) sweeps the fraction of agents the
// attacker tries to keep satiated when it must finance the attack from
// in-system earnings (5% attacker agents, no exogenous budget). The y value
// is the time-average fraction of targets actually held at threshold: it
// collapses as the targeted fraction grows, reproducing "it is easy for an
// attacker to accumulate enough money to satiate a few nodes, [but] there
// may not even be enough money in the system to satiate a significant
// fraction". At x = 0 there are no targets and the value is vacuously 1.
func ScripMoneySupplyExperiment(seed uint64, q Quality) *Series {
	q = q.normalize()
	xs := sweep.Range(0, 0.8, q.Points)
	return sweep.Run(sweep.Config{Name: "satiated-fraction(earned-budget)", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		cfg := scrip.DefaultConfig()
		cfg.AttackerFraction = 0.05
		sim, err := scrip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		var targets []int
		want := int(x * float64(cfg.Agents))
		for i := 0; i < cfg.Agents && len(targets) < want; i++ {
			if sim.Kind(i) != scrip.AttackerAgent {
				targets = append(targets, i)
			}
		}
		if len(targets) > 0 {
			if err := sim.Attack(scrip.AttackPlan{Targets: targets, Budget: 0, StartRound: 1000}); err != nil {
				return 0
			}
		}
		res, err := sim.Run()
		if err != nil {
			return 0
		}
		if x == 0 {
			return 1 // vacuously satiated: no targets
		}
		return res.SatiatedTargetFraction
	})
}

// ScripRareProviderExperiment (E4b) reproduces the paper's rare-resource
// harm: only ten agents can serve "specialty" requests ("users who control
// important or rare resources"), and the attacker keeps exactly those
// agents satiated for as long as its scrip budget lasts. Specialty
// availability collapses in proportion to the budget — the attack's
// cost/harm curve. A second arm makes two of the ten providers altruists
// (the "encouraging altruism" defense): they serve regardless of balance,
// and availability stays high at every budget.
func ScripRareProviderExperiment(seed uint64, q Quality) []*Series {
	q = q.normalize()
	xs := []float64{0, 50, 100, 200, 400, 800, 1600, 3200}
	run := func(altruistProviders int) func(x float64, rng *simrng.Source) float64 {
		return func(x float64, rng *simrng.Source) float64 {
			cfg := scrip.DefaultConfig()
			cfg.AltruistProviders = altruistProviders
			// Specialty demand is tuned so providers' earn rate roughly
			// matches their spend rate; otherwise rare providers satiate
			// organically (earning much faster than they spend) and the
			// attack has nothing left to deny.
			cfg.SpecialProviders = 10
			cfg.SpecialRequestFraction = 0.05
			sim, err := scrip.New(cfg, rng.Uint64())
			if err != nil {
				return 0
			}
			if x > 0 {
				targets := make([]int, cfg.SpecialProviders)
				for i := range targets {
					targets[i] = i
				}
				if err := sim.Attack(scrip.AttackPlan{Targets: targets, Budget: int(x), StartRound: 1000}); err != nil {
					return 0
				}
			}
			res, err := sim.Run()
			if err != nil {
				return 0
			}
			return res.SpecialAvailability
		}
	}
	attacked := sweep.Run(sweep.Config{Name: "specialty-availability", Xs: xs, Seeds: q.Seeds}, seed, run(0))
	defended := sweep.Run(sweep.Config{Name: "specialty-availability(2-altruist-providers)", Xs: xs, Seeds: q.Seeds}, seed+1, run(2))
	return []*Series{attacked, defended}
}

// SatiateFractionAblation (A1) reproduces the paper's reasoning for
// targeting 70% of the system: "it strikes a balance between the need to
// satiate enough nodes to limit trade opportunities for isolated nodes and
// a desire to isolate as many as possible." At a fixed attacker fraction,
// sweep the satiation target and report isolated-node delivery — the
// attacker wants to starve as many nodes as possible. Satiating more nodes
// starves each isolated node harder (fewer trading partners) but shrinks
// the isolated population — so per-victim damage rises monotonically while
// the *victim count* (isolated nodes with unusable service) peaks in
// between, which is what makes ~70% the attacker's sweet spot. Returns both
// series: "isolated-delivery" and "unusable-victims".
func SatiateFractionAblation(seed uint64, q Quality) []*Series {
	q = q.normalize()
	xs := sweep.Range(0.3, 0.95, q.Points)
	run := func(x float64, rng *simrng.Source) (gossip.Result, error) {
		cfg := gossip.DefaultConfig()
		cfg.Attack = attack.Trade
		cfg.AttackerFraction = 0.25
		cfg.SatiateFraction = x
		eng, err := gossip.New(cfg, rng.Uint64())
		if err != nil {
			return gossip.Result{}, err
		}
		return eng.Run()
	}
	delivery := sweep.Run(sweep.Config{Name: "isolated-delivery", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return res.Isolated.MeanDelivery
	})
	victims := sweep.Run(sweep.Config{Name: "unusable-victims", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return float64(res.Isolated.Nodes) * (1 - res.Isolated.UsableFraction)
	})
	return []*Series{delivery, victims}
}

// ScripInflationExperiment (E10, an extension beyond the paper) exposes an
// emergent system-wide variant of the lotus-eater attack that the money
// model makes possible: the attacker does not target anyone in particular —
// it simply gifts scrip to arbitrary agents. The money circulates, every
// balance drifts above the threshold, and the whole economy satiates: no
// one needs to earn, so no one volunteers. This is the monetary-inflation
// analogue of the altruist-driven crash in the paper's reference [14].
// Returns overall availability versus scrip injected (per capita).
//
// The dose-response is dramatic: small injections *help* (paying customers
// stop going broke), but once the gift lifts every balance to the
// threshold, the economy freezes permanently — with no volunteers there is
// no service, hence no spending, hence no one ever dips back below the
// threshold. A fixed-supply scrip system has a finite, computable budget
// that kills it outright.
func ScripInflationExperiment(seed uint64, q Quality) *Series {
	q = q.normalize()
	xs := []float64{0, 1, 2, 2.25, 2.5, 2.75, 3, 4}
	return sweep.Run(sweep.Config{Name: "availability", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		cfg := scrip.DefaultConfig()
		sim, err := scrip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		// Mint x scrip per capita as unconditional gifts — no targeting at
		// all; the inflation itself is the attack. Fractional per-capita
		// amounts distribute the remainder one unit at a time.
		total := int(x * float64(cfg.Agents))
		each := total / cfg.Agents
		rem := total % cfg.Agents
		for i := 0; i < cfg.Agents; i++ {
			amount := each
			if i < rem {
				amount++
			}
			if err := sim.Mint(i, amount); err != nil {
				return 0
			}
		}
		res, err := sim.Run()
		if err != nil {
			return 0
		}
		return res.Availability
	})
}

// ScripHoardingExperiment (E11, an extension beyond the paper) quantifies
// the paper's closing remark that "nodes that provide a disproportionate
// amount of service can become a point of centralization": attacker agents
// here do nothing malicious except volunteer constantly and never spend.
// Their hoarded earnings drain the fixed money supply until requesters
// cannot pay. Returns availability for ordinary agents versus the hoarder
// fraction.
func ScripHoardingExperiment(seed uint64, q Quality) *Series {
	q = q.normalize()
	xs := sweep.Range(0, 0.25, q.Points)
	return sweep.Run(sweep.Config{Name: "availability", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		cfg := scrip.DefaultConfig()
		cfg.AttackerFraction = x
		sim, err := scrip.New(cfg, rng.Uint64())
		if err != nil {
			return 0
		}
		res, err := sim.Run()
		if err != nil {
			return 0
		}
		return res.Availability
	})
}

// SwarmRow is one scenario of the swarm experiment (E5).
type SwarmRow struct {
	Scenario             string
	CompletedFraction    float64
	MeanCompletionTick   float64
	MedianCompletionTick float64
	LostPieces           int
}

// SwarmExperiment (E5) reproduces the paper's BitTorrent analysis:
// satiating top uploaders in a seeded swarm does no damage — finished nodes
// keep seeding, so the attacker's uploads are "often actually a net benefit
// to the torrent" — and even the targeted rare-piece-holder attack on a
// fragile swarm (initial seed departs, finished leechers leave) causes at
// most marginal piece loss under either selection policy, while rarest-first
// gives the healthier baseline. Rows average `seeds` independent runs.
func SwarmExperiment(seed uint64, seeds int) ([]SwarmRow, error) {
	if seeds < 1 {
		seeds = 1
	}
	rng := simrng.New(seed)
	run := func(name string, mutate func(*swarm.Config)) (SwarmRow, error) {
		row := SwarmRow{Scenario: name}
		var lost float64
		for rep := 0; rep < seeds; rep++ {
			cfg := swarm.DefaultConfig()
			mutate(&cfg)
			sim, err := swarm.New(cfg, rng.ChildN(name, rep).Uint64())
			if err != nil {
				return SwarmRow{}, err
			}
			res, err := sim.Run()
			if err != nil {
				return SwarmRow{}, err
			}
			row.CompletedFraction += res.CompletedFraction
			row.MeanCompletionTick += res.MeanCompletionTick
			row.MedianCompletionTick += res.MedianCompletionTick
			lost += float64(res.LostPieces)
		}
		row.CompletedFraction /= float64(seeds)
		row.MeanCompletionTick /= float64(seeds)
		row.MedianCompletionTick /= float64(seeds)
		row.LostPieces = int(lost/float64(seeds) + 0.5)
		return row, nil
	}

	fragile := func(cfg *swarm.Config) {
		// The population the rare-piece attack needs: the initial seed
		// departs early and finished leechers leave instead of seeding.
		cfg.SeedDepartTick = 60
		cfg.SeedAfterComplete = false
		cfg.Ticks = 600
	}
	rareAttack := func(cfg *swarm.Config) {
		cfg.Attack = swarm.AttackRarePieceHolders
		cfg.AttackerUplink = 64
		cfg.AttackTargets = 2
		cfg.AttackStartTick = 10
		cfg.AttackStopTick = 60 // a bounded campaign while pieces are scarce
	}

	var rows []SwarmRow
	specs := []struct {
		name   string
		mutate func(*swarm.Config)
	}{
		{"baseline/rarest-first", func(cfg *swarm.Config) {}},
		{"attack-top-uploaders", func(cfg *swarm.Config) {
			cfg.Attack = swarm.AttackTopUploaders
			cfg.AttackerUplink = 32
			cfg.AttackTargets = 8
		}},
		{"fragile/no-attack/rarest-first", fragile},
		{"fragile/rare-attack/rarest-first", func(cfg *swarm.Config) { fragile(cfg); rareAttack(cfg) }},
		{"fragile/no-attack/random", func(cfg *swarm.Config) { fragile(cfg); cfg.Selection = swarm.SelectRandom }},
		{"fragile/rare-attack/random", func(cfg *swarm.Config) {
			fragile(cfg)
			rareAttack(cfg)
			cfg.Selection = swarm.SelectRandom
		}},
	}
	for _, spec := range specs {
		row, err := run(spec.name, spec.mutate)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CodingExperiment (E6) compares plain token gossip against random linear
// network coding under the rare-token attack: the attacker satiates the s
// unique holders of s source symbols. Plain dissemination loses those
// symbols outright; coded dissemination is indifferent because every packet
// mixes all symbols. Returns mean progress (fraction of the file
// reconstructible) versus s for both modes.
func CodingExperiment(seed uint64, q Quality) []*Series {
	q = q.normalize()
	const (
		n       = 120
		symbols = 24
	)
	xs := make([]float64, 0, 7)
	for s := 0; s <= 12; s += 2 {
		xs = append(xs, float64(s))
	}

	runMode := func(name string, coded bool, offset uint64) *Series {
		return sweep.Run(sweep.Config{Name: name, Xs: xs, Seeds: q.Seeds}, seed+offset, func(x float64, rng *simrng.Source) float64 {
			s := int(x)
			// Unique holders: node i holds symbol i for i < symbols; the
			// rest duplicate symbols >= s (so only the first s symbols are
			// rare).
			alloc := make([]int, n)
			for v := 0; v < n; v++ {
				if v < symbols {
					alloc[v] = v
				} else {
					alloc[v] = symbols - 1 - (v % (symbols - 12))
				}
			}
			targets := make([]int, s)
			for i := range targets {
				targets[i] = i
			}
			cfg := coding.DisseminationConfig{
				Graph:       graph.RandomRegularish(n, 4, rng.Child("graph")),
				Symbols:     symbols,
				PayloadSize: 32,
				Contacts:    2,
				Rounds:      50,
				Coded:       coded,
				Allocation:  alloc,
			}
			var t attack.Targeter
			if s > 0 {
				t = attack.NewListTargeter(n, targets)
			}
			sim, err := coding.NewDissemination(cfg, rng.Uint64(), t)
			if err != nil {
				return 0
			}
			res, err := sim.Run()
			if err != nil {
				return 0
			}
			return res.MeanProgress
		})
	}
	return []*Series{
		runMode("plain", false, 0),
		runMode("coded", true, 1),
	}
}

// ReportingExperiment (E7) sweeps the obedient fraction under a trade
// lotus-eater attack with the reporting defense on: obedient satiation
// targets report the attacker's excessive deliveries using signed receipts,
// and accused nodes are evicted. Returns isolated-node delivery and the
// eviction count versus obedient fraction.
func ReportingExperiment(seed uint64, q Quality) []*Series {
	q = q.normalize()
	xs := sweep.Range(0, 1, q.Points)
	// Excess service beyond the balance slack is already a protocol
	// violation (honest exchanges are one-for-one up to slack), so an
	// excess of 2+ is reportable, and two independent witnesses suffice.
	base := gossip.DefaultConfig()
	base.Attack = attack.Trade
	base.AttackerFraction = 0.30
	base.ReportThreshold = 1
	base.EvictAfterReports = 2

	run := func(x float64, rng *simrng.Source) (gossip.Result, error) {
		cfg := base
		cfg.ObedientFraction = x
		eng, err := gossip.New(cfg, rng.Uint64())
		if err != nil {
			return gossip.Result{}, err
		}
		return eng.Run()
	}
	delivery := sweep.Run(sweep.Config{Name: "isolated-delivery", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return res.Isolated.MeanDelivery
	})
	evictions := sweep.Run(sweep.Config{Name: "evicted-nodes", Xs: xs, Seeds: q.Seeds}, seed, func(x float64, rng *simrng.Source) float64 {
		res, err := run(x, rng)
		if err != nil {
			return 0
		}
		return float64(res.Evictions)
	})
	return []*Series{delivery, evictions}
}

// RateLimitExperiment (E8) addresses Section 5's open problem: limit the
// rate at which any peer can provide service so the attacker cannot
// satiate "sufficiently rapidly". All honest nodes are obedient and accept
// at most `cap` updates per peer per round. Returns isolated delivery under
// an ideal lotus-eater attack and under no attack (the cost of the defense)
// versus the cap; x = 0 means the limiter is off.
func RateLimitExperiment(seed uint64, q Quality) []*Series {
	q = q.normalize()
	xs := []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24}
	run := func(kind AttackKind, fraction float64) func(x float64, rng *simrng.Source) float64 {
		return func(x float64, rng *simrng.Source) float64 {
			cfg := gossip.DefaultConfig()
			cfg.Attack = kind
			cfg.AttackerFraction = fraction
			cfg.ObedientFraction = 1
			cfg.RateLimitPerPeer = int(x)
			eng, err := gossip.New(cfg, rng.Uint64())
			if err != nil {
				return 0
			}
			res, err := eng.Run()
			if err != nil {
				return 0
			}
			return res.Isolated.MeanDelivery
		}
	}
	attacked := sweep.Run(sweep.Config{Name: "ideal-attack(10%)", Xs: xs, Seeds: q.Seeds}, seed, run(attack.Ideal, 0.10))
	clean := sweep.Run(sweep.Config{Name: "no-attack", Xs: xs, Seeds: q.Seeds}, seed+1, run(attack.None, 0))
	return []*Series{attacked, clean}
}

// RotatingResult summarizes one arm of the rotating-target experiment (E9).
type RotatingResult struct {
	// Name labels the arm (static vs rotating).
	Name string
	// MeanDelivery is the honest population's overall delivery.
	MeanDelivery float64
	// NodesWithOutage is the fraction of honest nodes that experienced at
	// least one epoch (RotatePeriod-round window) of unusable service.
	NodesWithOutage float64
	// MeanOutageEpochs is the average number of unusable epochs per honest
	// node.
	MeanOutageEpochs float64
	// Epochs is how many measured epochs the run contained.
	Epochs int
}

// RotatingExperiment (E9) demonstrates the paper's remark that "by changing
// who is satiated over time, the attacker could even make the service
// intermittently unusable for all nodes". It runs the trade attack twice —
// with a static satiated set and with the set re-drawn every `period`
// rounds — and reports, per arm, how many nodes ever suffered an unusable
// window. Static: only the permanently isolated minority suffers. Rotating:
// nearly every node takes its turn being starved.
func RotatingExperiment(seed uint64, period int) ([]RotatingResult, error) {
	run := func(name string, rotate int) (RotatingResult, error) {
		cfg := gossip.DefaultConfig()
		cfg.Attack = attack.Ideal
		cfg.AttackerFraction = 0.08
		cfg.RotatePeriod = rotate
		cfg.Rounds = 15 + 10*period
		cfg.TrackPerNode = true
		eng, err := gossip.New(cfg, seed)
		if err != nil {
			return RotatingResult{}, err
		}
		res, err := eng.Run()
		if err != nil {
			return RotatingResult{}, err
		}
		out := RotatingResult{Name: name, MeanDelivery: res.AllHonest.MeanDelivery}
		var outageNodes, honest int
		var outageEpochs float64
		for _, rounds := range res.NodeRoundDelivery {
			// Group this node's measured rounds into period-length epochs.
			type acc struct{ sum, n float64 }
			epochs := map[int]*acc{}
			for r, frac := range rounds {
				if frac < 0 {
					continue
				}
				ep := r / period
				a := epochs[ep]
				if a == nil {
					a = &acc{}
					epochs[ep] = a
				}
				a.sum += frac
				a.n++
			}
			if len(epochs) == 0 {
				continue // attacker node
			}
			honest++
			if len(epochs) > out.Epochs {
				out.Epochs = len(epochs)
			}
			bad := 0
			for _, a := range epochs {
				if a.sum/a.n < cfg.UsableThreshold {
					bad++
				}
			}
			if bad > 0 {
				outageNodes++
			}
			outageEpochs += float64(bad)
		}
		if honest > 0 {
			out.NodesWithOutage = float64(outageNodes) / float64(honest)
			out.MeanOutageEpochs = outageEpochs / float64(honest)
		}
		return out, nil
	}
	staticArm, err := run("static", 0)
	if err != nil {
		return nil, err
	}
	rotatingArm, err := run("rotating", period)
	if err != nil {
		return nil, err
	}
	return []RotatingResult{staticArm, rotatingArm}, nil
}

// Table1 returns the paper's simulation parameters (Table 1) as rendered
// rows, sourced from DefaultGossipConfig so the table cannot drift from the
// code.
func Table1() [][]string {
	cfg := gossip.DefaultConfig()
	return [][]string{
		{"Parameter", "Value"},
		{"Number of Nodes", fmt.Sprintf("%d", cfg.Nodes)},
		{"Updates per Round", fmt.Sprintf("%d", cfg.UpdatesPerRound)},
		{"Update Lifetime (rds)", fmt.Sprintf("%d", cfg.Lifetime)},
		{"Copies Seeded", fmt.Sprintf("%d", cfg.CopiesSeeded)},
		{"Opt. Push Size (upd)", fmt.Sprintf("%d", cfg.PushSize)},
	}
}
