// Package lotuseater is a reproduction of "The Lotus-Eater Attack" (Kash,
// Friedman, Halpern; PODC 2008). It provides, behind one import:
//
//   - a BAR Gossip simulator with the paper's three attacks (crash, ideal
//     lotus-eater, trade lotus-eater) and its defenses (larger optimistic
//     pushes, slightly unbalanced exchanges, obedient reporting, rate
//     limiting) — see NewGossip;
//   - the abstract token-collecting model (G, T, sat, f, c, a) of Section 3
//     — see NewTokenModel;
//   - a scrip economy with threshold strategies — see NewScrip;
//   - a BitTorrent-like swarm — see NewSwarm;
//   - random linear network coding over GF(2^8) and the coded-dissemination
//     defense — see NewDissemination;
//   - a registry of named, self-describing experiments covering every table
//     and figure in the paper plus the extension experiments — see
//     Experiments and RunExperiment (or `lotus-sim list` / `lotus-sim run
//     <name>` on the command line), with the classic typed drivers
//     (Figure1 and friends in experiments.go) kept as thin shims.
//
// All five simulators implement the sim.Model interface of the shared
// simulation kernel (internal/sim) — Step / Finished / Snapshot — and
// experiment sweeps execute on the kernel's process-wide bounded worker
// pool with per-worker scratch reuse, so results are deterministic in
// (configuration, seed) for any worker count. Everything uses only the
// standard library.
package lotuseater

import (
	"lotuseater/internal/attack"
	"lotuseater/internal/coding"
	"lotuseater/internal/gossip"
	"lotuseater/internal/graph"
	"lotuseater/internal/scrip"
	"lotuseater/internal/simrng"
	"lotuseater/internal/swarm"
	"lotuseater/internal/tokenmodel"
)

// Re-exported configuration and result types. The facade keeps downstream
// callers to a single import; the implementations live in internal packages.
type (
	// GossipConfig configures the BAR Gossip simulator (Table 1 defaults
	// via DefaultGossipConfig).
	GossipConfig = gossip.Config
	// GossipResult is a BAR Gossip run's outcome.
	GossipResult = gossip.Result
	// GossipEngine is a single BAR Gossip simulation.
	GossipEngine = gossip.Engine

	// TokenModelConfig configures the Section 3 token-collecting model.
	TokenModelConfig = tokenmodel.Config
	// TokenModelResult is a token-model run's outcome.
	TokenModelResult = tokenmodel.Result

	// ScripConfig configures the scrip economy.
	ScripConfig = scrip.Config
	// ScripResult is a scrip run's outcome.
	ScripResult = scrip.Result
	// ScripAttackPlan configures the money-gifting lotus-eater attack.
	ScripAttackPlan = scrip.AttackPlan

	// SwarmConfig configures the BitTorrent-like swarm.
	SwarmConfig = swarm.Config
	// SwarmResult is a swarm run's outcome.
	SwarmResult = swarm.Result

	// DisseminationConfig configures the coded-vs-plain gossip comparison.
	DisseminationConfig = coding.DisseminationConfig
	// DisseminationResult is its outcome.
	DisseminationResult = coding.DisseminationResult

	// Graph is an undirected communication graph.
	Graph = graph.Graph

	// AttackKind enumerates the paper's attacks on BAR Gossip.
	AttackKind = attack.Kind
)

// Attack kinds, re-exported for configuration literals.
const (
	AttackNone  = attack.None
	AttackCrash = attack.Crash
	AttackIdeal = attack.Ideal
	AttackTrade = attack.Trade
)

// Scrip agent kinds, re-exported for inspecting Sim.Kind results.
const (
	ScripRational      = scrip.Rational
	ScripAltruist      = scrip.Altruist
	ScripAttackerAgent = scrip.AttackerAgent
)

// Swarm piece-selection policies and attack kinds, re-exported for
// configuration literals.
const (
	SwarmSelectRandom      = swarm.SelectRandom
	SwarmSelectRarestFirst = swarm.SelectRarestFirst

	SwarmAttackOff              = swarm.AttackOff
	SwarmAttackTopUploaders     = swarm.AttackTopUploaders
	SwarmAttackRarePieceHolders = swarm.AttackRarePieceHolders
)

// DefaultGossipConfig returns Table 1 of the paper plus this reproduction's
// measurement settings.
func DefaultGossipConfig() GossipConfig { return gossip.DefaultConfig() }

// NewGossip builds a BAR Gossip simulation; deterministic in (cfg, seed).
func NewGossip(cfg GossipConfig, seed uint64) (*gossip.Engine, error) {
	return gossip.New(cfg, seed)
}

// NewTokenModel builds a Section 3 token-collecting simulation. satiate,
// when non-empty, lists node ids the attacker satiates at the start of
// every round.
func NewTokenModel(cfg TokenModelConfig, seed uint64, satiate []int) (*tokenmodel.Sim, error) {
	if len(satiate) == 0 {
		return tokenmodel.New(cfg, seed)
	}
	t := attack.NewListTargeter(cfg.Graph.N(), satiate)
	return tokenmodel.New(cfg, seed, tokenmodel.WithTargeter(t))
}

// DefaultScripConfig returns a small healthy scrip economy.
func DefaultScripConfig() ScripConfig { return scrip.DefaultConfig() }

// NewScrip builds a scrip economy simulation.
func NewScrip(cfg ScripConfig, seed uint64) (*scrip.Sim, error) {
	return scrip.New(cfg, seed)
}

// DefaultSwarmConfig returns a modest healthy swarm.
func DefaultSwarmConfig() SwarmConfig { return swarm.DefaultConfig() }

// NewSwarm builds a BitTorrent-like swarm simulation.
func NewSwarm(cfg SwarmConfig, seed uint64) (*swarm.Sim, error) {
	return swarm.New(cfg, seed)
}

// NewDissemination builds the coded-vs-plain dissemination simulation.
// satiate lists node ids the attacker satiates every round.
func NewDissemination(cfg DisseminationConfig, seed uint64, satiate []int) (*coding.Dissemination, error) {
	var t attack.Targeter
	if len(satiate) > 0 {
		t = attack.NewListTargeter(cfg.Graph.N(), satiate)
	}
	return coding.NewDissemination(cfg, seed, t)
}

// CompleteGraph returns the complete graph K_n.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// GridGraph returns a rows x cols 4-connected grid.
func GridGraph(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// RandomGraph returns an Erdős–Rényi G(n, p) graph drawn from seed.
func RandomGraph(n int, p float64, seed uint64) *Graph {
	return graph.Random(n, p, simrng.New(seed))
}

// RegularishGraph returns a graph where every node has at least deg random
// neighbors; it is connected with high probability for deg >= 3.
func RegularishGraph(n, deg int, seed uint64) *Graph {
	return graph.RandomRegularish(n, deg, simrng.New(seed))
}
