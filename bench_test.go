package lotuseater

// One benchmark per table and figure of the paper, plus the extension
// experiments E1-E9 from DESIGN.md. Each bench regenerates its artifact at
// reduced sweep quality (the full-fidelity versions live behind
// cmd/figures -quality full) and reports a headline reproduction metric via
// b.ReportMetric, so `go test -bench=.` doubles as a quick sanity pass over
// the whole reproduction.

import (
	"testing"

	"lotuseater/internal/gossip"
)

func benchQ() Quality { return Quality{Points: 4, Seeds: 1} }

// BenchmarkTable1Defaults measures a single simulation at the paper's
// Table 1 parameters — the cost of one data point in every figure.
func BenchmarkTable1Defaults(b *testing.B) {
	cfg := DefaultGossipConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		eng, err := gossip.New(cfg, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res.AllHonest.MeanDelivery
	}
	b.ReportMetric(last, "delivery")
}

func BenchmarkFigure1(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		series := Figure1(uint64(i), benchQ())
		if x, ok := series[2].CrossoverBelow(0.93); ok {
			crossover = x
		}
	}
	b.ReportMetric(crossover, "trade-crossover")
}

func BenchmarkFigure2(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		series := Figure2(uint64(i), benchQ())
		if x, ok := series[1].CrossoverBelow(0.93); ok {
			crossover = x
		}
	}
	b.ReportMetric(crossover, "ideal-crossover")
}

func BenchmarkFigure3(b *testing.B) {
	var y float64
	for i := 0; i < b.N; i++ {
		series := Figure3(uint64(i), benchQ())
		y = series[3].YAt(0.35) // push4+slack curve at 35% attackers
	}
	b.ReportMetric(y, "defended-delivery")
}

func BenchmarkTokenAltruism(b *testing.B) {
	var y float64
	for i := 0; i < b.N; i++ {
		s := AltruismExperiment(uint64(i), benchQ())
		y = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(y, "completion-at-max-a")
}

func BenchmarkGridCut(b *testing.B) {
	var coverage float64
	for i := 0; i < b.N; i++ {
		rows, err := GridCutExperiment(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Topology == "grid/column-cut" {
				coverage = r.RareTokenCoverage
			}
		}
	}
	b.ReportMetric(coverage, "cut-coverage")
}

func BenchmarkRareToken(b *testing.B) {
	var denied float64
	for i := 0; i < b.N; i++ {
		s := RareTokenExperiment(uint64(i), benchQ())
		denied = s.Points[0].Y
	}
	b.ReportMetric(denied, "completion-at-a0")
}

func BenchmarkScripSatiation(b *testing.B) {
	var y float64
	for i := 0; i < b.N; i++ {
		s := ScripMoneySupplyExperiment(uint64(i), benchQ())
		y = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(y, "satiated-at-max-f")
}

func BenchmarkScripRareProvider(b *testing.B) {
	var y float64
	for i := 0; i < b.N; i++ {
		series := ScripRareProviderExperiment(uint64(i), benchQ())
		y = series[0].Points[0].Y
	}
	b.ReportMetric(y, "attacked-availability")
}

func BenchmarkSwarmAttack(b *testing.B) {
	var completed float64
	for i := 0; i < b.N; i++ {
		rows, err := SwarmExperiment(uint64(i), 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scenario == "fragile/rare-attack/rarest-first" {
				completed = r.CompletedFraction
			}
		}
	}
	b.ReportMetric(completed, "attacked-completion")
}

func BenchmarkCodingDefense(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		series := CodingExperiment(uint64(i), benchQ())
		last := len(series[0].Points) - 1
		gap = series[1].Points[last].Y - series[0].Points[last].Y
	}
	b.ReportMetric(gap, "coded-minus-plain")
}

func BenchmarkReportingDefense(b *testing.B) {
	var evictions float64
	for i := 0; i < b.N; i++ {
		series := ReportingExperiment(uint64(i), benchQ())
		evictions = series[1].Points[len(series[1].Points)-1].Y
	}
	b.ReportMetric(evictions, "evictions-at-full-obedience")
}

func BenchmarkRateLimit(b *testing.B) {
	var recovered float64
	for i := 0; i < b.N; i++ {
		series := RateLimitExperiment(uint64(i), benchQ())
		recovered = series[0].Points[1].Y - series[0].Points[0].Y
	}
	b.ReportMetric(recovered, "delivery-recovered-by-cap1")
}

func BenchmarkRotatingAttack(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := RotatingExperiment(uint64(i), 20)
		if err != nil {
			b.Fatal(err)
		}
		spread = rows[1].NodesWithOutage - rows[0].NodesWithOutage
	}
	b.ReportMetric(spread, "outage-spread")
}

func BenchmarkScripInflation(b *testing.B) {
	var cliff float64
	for i := 0; i < b.N; i++ {
		s := ScripInflationExperiment(uint64(i), benchQ())
		cliff = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(cliff, "availability-past-cliff")
}

func BenchmarkScripHoarding(b *testing.B) {
	var y float64
	for i := 0; i < b.N; i++ {
		s := ScripHoardingExperiment(uint64(i), benchQ())
		y = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(y, "availability-at-max-hoarders")
}

func BenchmarkSatiateAblation(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		series := SatiateFractionAblation(uint64(i), benchQ())
		for _, p := range series[1].Points {
			if p.Y > peak {
				peak = p.Y
			}
		}
	}
	b.ReportMetric(peak, "peak-victims")
}

// Registry-driven benchmarks: one per simulator, each running its
// representative experiment through the registry exactly as `lotus-sim run`
// would. They baseline the full named-experiment path (registry lookup,
// kernel worker pool, artifact assembly) so future perf PRs have a
// like-for-like number to beat per backend.

func benchRegistry(b *testing.B, name string) {
	b.Helper()
	q := Quality{Points: 4, Seeds: 1}
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment(name, uint64(i), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryGossip(b *testing.B)     { benchRegistry(b, "figure1") }
func BenchmarkRegistryTokenModel(b *testing.B) { benchRegistry(b, "raretoken") }
func BenchmarkRegistryScrip(b *testing.B)      { benchRegistry(b, "scrip-money-supply") }
func BenchmarkRegistrySwarm(b *testing.B)      { benchRegistry(b, "swarm") }
func BenchmarkRegistryCoding(b *testing.B)     { benchRegistry(b, "coding") }
