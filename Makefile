# Developer loops for the lotuseater reproduction.
#
#   make            # build + vet + test (the tier-1 gate)
#   make bench      # registry-driven benchmarks, one per simulator
#   make figures    # regenerate every table/figure at quick fidelity

GO ?= go

.PHONY: all build test vet bench figures list clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRegistry' -benchmem ./

figures:
	$(GO) run ./cmd/lotus-sim figures -exp all -quality quick

list:
	$(GO) run ./cmd/lotus-sim list

clean:
	$(GO) clean ./...
