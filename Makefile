# Developer loops for the lotuseater reproduction.
#
#   make            # build + vet + lint + test (the tier-1 gate)
#   make lint       # project analyzers (lotus-lint) over the whole module
#   make fmt        # gofmt the tree in place
#   make bench      # scenario benchmarks -> BENCH_scenarios.json
#   make bench-go   # go test registry micro-benchmarks
#   make figures    # regenerate every table/figure at quick fidelity
#   make race       # race-check the concurrency kernel + strategy layer

GO ?= go
GOFMT ?= gofmt

.PHONY: all build test vet lint fmt fmt-check race bench bench-go check-stats figures list scenarios golden cover clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the determinism and hot-path rules
# (detrand, maprange, rngshard, allocfree) enforced by cmd/lotus-lint.
# Non-zero exit on any finding; see README "Static analysis".
lint:
	$(GO) run ./cmd/lotus-lint ./...

fmt:
	$(GOFMT) -w .

# CI gate: fail listing any file gofmt would rewrite.
fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./internal/sim/... ./internal/sweep/... ./internal/experiment/... \
		./internal/scenario/... ./internal/attack/... ./internal/defense/... ./internal/cli/... \
		./internal/gossip/... ./internal/swarm/... ./internal/serve/... ./internal/adaptive/... \
		./internal/cluster/... ./internal/obs/... ./internal/population/...
	# The swarm's widened ParallelFor passes (sharded unchoke scoring, the
	# leecher scans, the reverse-position/rarity builds) only fan out above
	# ~32k nodes; these tests force that scale and shard split under -race.
	$(GO) test -race -count=1 \
		-run 'TestShardedPassesRace|TestEvalParallelBitIdentical|TestIncrementalRarityMatchesRescan' \
		./internal/swarm

# Statistical self-tests for the adaptive stopping rule: Student-t golden
# constants and the 1000-trial CI coverage check, uncached so the numbers
# are actually recomputed.
check-stats:
	$(GO) test -count=1 -run 'TestStoppingRuleCoverage' -v ./internal/adaptive
	$(GO) test -count=1 -run 'TestTCriticalGolden|TestTQuantileInvertsCDF|TestAccumulatorHalfWidth' ./internal/metrics

# Rewrite the golden CLI outputs after an intentional output change; review
# the diff like code.
golden:
	$(GO) test ./internal/cli -run Golden -update

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Registry-driven scenario benchmarks (one per substrate plus a
# 1000-replicate streaming-aggregation run), the adaptive bench (fixed
# budget vs CI-targeted replication on the three *-auto scenarios), the
# kernel bench (ns/round and allocs/round for gossip and swarm at n in
# {10k, 100k, 1m}), and the cluster bench (1-vs-2-worker distributed
# throughput through a loopback coordinator); emits BENCH_scenarios.json,
# BENCH_adaptive.json, BENCH_kernel.json, and BENCH_cluster.json for the
# performance trajectory across PRs. Raise -kernel-rounds locally for
# tighter kernel numbers; read the cluster scaling row next to its cpus
# field.
bench:
	$(GO) run ./cmd/lotus-sim scenarios bench -out BENCH_scenarios.json -adaptive-out BENCH_adaptive.json -kernel-out BENCH_kernel.json -cluster-out BENCH_cluster.json

bench-go:
	$(GO) test -run '^$$' -bench 'BenchmarkRegistry' -benchmem ./

figures:
	$(GO) run ./cmd/lotus-sim figures -exp all -quality quick

list:
	$(GO) run ./cmd/lotus-sim list

scenarios:
	$(GO) run ./cmd/lotus-sim scenarios list

clean:
	$(GO) clean ./...
